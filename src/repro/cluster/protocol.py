"""The coordinator/worker wire protocol.

Every message is one length-prefixed pickle frame::

    +----------------+----------------------+
    | 4 bytes, ">I"  | pickled dict payload |
    +----------------+----------------------+

Control messages (REGISTER, WELCOME, TASK, RESULT, HEARTBEAT, ACK, SHUTDOWN)
are small dicts; bulk data never rides inside them.  Cross-host DFG edges
travel instead as a sequence of CHUNK messages whose ``data`` payloads are
*exactly* the framed byte chunks of :mod:`repro.engine.channels`
(newline-delimited UTF-8, produced by :func:`iter_encoded_chunks` and decoded
by :func:`iter_decoded_lines`), terminated by one EDGE_END — so the cluster
data plane reuses the engine's framing rather than inventing a second one,
and a stream moves in bounded memory on both sides of the socket.

Message flow for one task::

    coordinator                                worker
        TASK {task_id, node, inputs, outputs, ...}  ->
        CHUNK* / EDGE_END per input edge            ->
                                                    (executes the node)
        <-  CHUNK* / EDGE_END per output edge
        <-  RESULT {task_id, report}
        ACK {task_id}                               ->

Pickle is safe here in the same sense as the worker pool's plan queue: both
endpoints are the same codebase, started by the same user, on an address the
user chose — the protocol is an internal process boundary, not a public
network service.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Dict, Iterable, Iterator, Optional

#: Bumped on any incompatible message-shape change; checked at registration.
PROTOCOL_VERSION = 1

#: Upper bound for one pickled message — a corrupt length prefix must not
#: make the receiver allocate gigabytes.  Chunk payloads are engine-sized
#: (64 KiB by default), so 64 MiB is generous headroom, not a data cap.
MAX_MESSAGE_BYTES = 1 << 26

# -- message types -----------------------------------------------------------
MSG_REGISTER = "register"  # worker -> coordinator: {pid, cores, version}
MSG_WELCOME = "welcome"  # coordinator -> worker: {worker_id, heartbeat_interval}
MSG_HEARTBEAT = "heartbeat"  # worker -> coordinator: liveness beacon
MSG_TASK = "task"  # coordinator -> worker: one pickled node plan
MSG_CHUNK = "chunk"  # either direction: one framed byte chunk of an edge
MSG_EDGE_END = "edge-end"  # either direction: the edge's stream is complete
MSG_RESULT = "result"  # worker -> coordinator: the node's execution report
MSG_ACK = "ack"  # coordinator -> worker: the task's outputs are committed
MSG_SHUTDOWN = "shutdown"  # coordinator -> worker: exit cleanly

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Raised on malformed or oversized frames."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed pickled message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte cap"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on EOF before the first byte."""
    pieces = []
    remaining = count
    while remaining:
        piece = sock.recv(remaining)
        if not piece:
            if remaining == count:
                return None  # clean EOF at a frame boundary
            raise ProtocolError("connection closed mid-frame")
        pieces.append(piece)
        remaining -= len(piece)
    return b"".join(pieces)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one message; None on clean EOF (the peer closed the connection)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_MESSAGE_BYTES}-byte cap"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    message = pickle.loads(payload)
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"malformed message: {type(message).__name__}")
    return message


class MessageSocket:
    """One protocol endpoint: locked sends, single-reader receives.

    The send lock lets a worker's heartbeat thread interleave safely with
    task-result streaming on the same connection; receiving stays
    single-threaded by construction (one receiver loop per connection).
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> None:
        with self._send_lock:
            send_message(self.sock, message)

    def recv(self) -> Optional[Dict[str, Any]]:
        return recv_message(self.sock)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def send_edge_stream(
    channel: MessageSocket, task_id: int, edge_id: int, frames: Iterable[bytes]
) -> None:
    """Stream one edge as CHUNK messages terminated by EDGE_END."""
    for frame in frames:
        if not frame:
            continue
        channel.send(
            {"type": MSG_CHUNK, "task_id": task_id, "edge_id": edge_id, "data": frame}
        )
    channel.send({"type": MSG_EDGE_END, "task_id": task_id, "edge_id": edge_id})


def iter_file_frames(path: str, chunk_size: int) -> Iterator[bytes]:
    """Framed byte chunks of an on-disk spill file (already engine-framed)."""
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(max(1, chunk_size))
            if not chunk:
                return
            yield chunk


def parse_address(address: str) -> "tuple[str, int]":
    """Parse a ``HOST:PORT`` string (the CLI's --cluster-connect format)."""
    host, separator, port = address.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)
