"""The distributed execution tier: a coordinator/worker ``cluster`` backend.

PaSh's order-aware dataflow model makes the wide fan-out stages the optimizer
creates (split -> N stateless chains -> aggregate) *location-independent*: a
stateless node evaluates one line batch at a time with no cross-batch state,
so it runs byte-identically on any host that can see its input stream.  This
package turns that property into a second execution tier above the
single-host scheduler:

* :mod:`repro.cluster.protocol` — the wire format: length-prefixed pickled
  control messages plus chunk frames (the exact framing of
  :mod:`repro.engine.channels`) for cross-host edge streams,
* :mod:`repro.cluster.worker` — the ``pash-worker`` client process: connect,
  register, receive pickled node plans, execute them with the engine's own
  :func:`repro.engine.workers.execute_plan`, stream the results home,
* :mod:`repro.cluster.coordinator` — the :class:`ClusterCoordinator` that
  shards a graph across registered workers (stateless nodes remote,
  stateful/aggregation nodes local), monitors heartbeats, requeues tasks
  from lost workers, and the :class:`ClusterBackend` registered under the
  name ``"cluster"``.

The tier is fully testable without SSH: with no ``connect`` address the
coordinator spawns ``workers`` localhost ``pash-worker`` processes itself.
"""

from repro.cluster.coordinator import (
    ClusterBackend,
    ClusterCoordinator,
    ClusterOptions,
    remote_eligible,
)

__all__ = [
    "ClusterBackend",
    "ClusterCoordinator",
    "ClusterOptions",
    "remote_eligible",
]
