"""``pash-worker`` — the cluster's remote execution client.

A worker is a small state machine around one coordinator connection::

    connect (with retry) -> register -> welcome
        -> { receive TASK + input CHUNKs -> execute -> stream output CHUNKs
             + RESULT } ...
        -> SHUTDOWN (exit 0) | connection lost (exit 1)

Execution reuses the engine's worker body verbatim: every task becomes a
:class:`~repro.engine.workers.WorkerPlan` whose inputs are inline line
streams (decoded from the task's chunk frames) and whose outputs are
report-collected, and :func:`~repro.engine.workers.execute_plan` runs it —
same registry, same batch-mode streaming, same counters, same span recording
— so a node produces the same bytes here as on the single-host scheduler by
construction.  Output streams larger than the spill threshold take the same
path as locally: :class:`~repro.engine.workers.ReportSink` spills them to a
worker-local temp file, which this module streams back frame-by-frame and
deletes — the report itself never carries bulk data.

A daemon thread heartbeats on the shared connection (the protocol socket
serializes sends), so a worker stuck in a long node evaluation still proves
liveness and only a *dead* worker trips the coordinator's requeue path.
"""

from __future__ import annotations

import argparse
import os
import shutil
import socket
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.cluster.protocol import (
    MSG_ACK,
    MSG_CHUNK,
    MSG_EDGE_END,
    MSG_HEARTBEAT,
    MSG_REGISTER,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    MessageSocket,
    ProtocolError,
    iter_file_frames,
    parse_address,
    send_edge_stream,
)
from repro.engine.channels import iter_decoded_lines, iter_encoded_chunks
from repro.engine.workers import SPILL_PATH_KEY, InputPort, OutputPort, WorkerPlan, execute_plan
from repro.resilience import fault as fault_injection
from repro.resilience.retry import RetryPolicy, retry_call


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _ReportBox:
    """The queue shim :func:`execute_plan` reports into (single plan, no IPC)."""

    def __init__(self) -> None:
        self.report: Optional[Dict[str, Any]] = None

    def put(self, report: Dict[str, Any]) -> None:
        self.report = report


class _PendingTask:
    """A TASK message plus the input frames still streaming in."""

    def __init__(self, message: Dict[str, Any]) -> None:
        self.message = message
        self.frames: Dict[int, List[bytes]] = {
            edge_id: [] for edge_id in message["inputs"]
        }
        self.ended = {edge_id: False for edge_id in message["inputs"]}

    def complete(self) -> bool:
        return all(self.ended.values())


def _connect_with_retry(host: str, port: int, retry_seconds: float) -> socket.socket:
    """Connect to the coordinator, retrying while it is still coming up.

    Lets operators start workers *before* the coordinator listens (the CI
    smoke job does exactly that) instead of imposing a start order.  The
    shared :class:`RetryPolicy` spaces the attempts with exponential backoff
    and jitter, so a fleet of workers racing one coordinator spreads out
    instead of reconnecting in lockstep.
    """
    connect = lambda: socket.create_connection((host, port), timeout=10.0)
    if retry_seconds <= 0:
        return connect()
    policy = RetryPolicy(
        max_retries=None,
        base_seconds=0.05,
        max_seconds=1.0,
        deadline_seconds=retry_seconds,
    )
    return retry_call(connect, policy, retryable=(OSError,))


def _heartbeat_loop(channel: MessageSocket, interval: float, stop: threading.Event) -> None:
    while not stop.wait(max(0.05, interval)):
        if fault_injection.fire(fault_injection.CLUSTER_HEARTBEAT):
            continue  # drop-frame fault: the coordinator hears silence
        try:
            channel.send({"type": MSG_HEARTBEAT, "pid": os.getpid()})
        except OSError:
            return


def _execute_task(channel: MessageSocket, task: _PendingTask) -> None:
    """Run one node plan and stream its outputs and report home."""
    message = task.message
    task_id = message["task_id"]
    chunk_size = message.get("chunk_size") or 1 << 16
    spill_directory = tempfile.mkdtemp(prefix="pash-worker-spill-")
    try:
        plan = WorkerPlan(
            node=message["node"],
            inputs=[
                InputPort(edge_id, data=list(iter_decoded_lines(iter(task.frames[edge_id]))))
                for edge_id in message["inputs"]
            ],
            outputs=[OutputPort(edge_id) for edge_id in message["outputs"]],
            registry=None,  # re-created in-process: the standard registry
            use_host_commands=bool(message.get("use_host_commands")),
            chunk_size=chunk_size,
            spill_threshold=message.get("spill_threshold") or 1 << 23,
            spill_directory=spill_directory,
            run_token=task_id,
            trace=message.get("trace"),
            faults=message.get("faults"),
        )
        box = _ReportBox()
        execute_plan(plan, box)
        report = box.report or {"node_id": plan.node.node_id, "error": "no report"}
        outputs = report.pop("outputs", {})
        if not report.get("error"):
            for edge_id in message["outputs"]:
                entry = outputs.get(edge_id, [])
                if isinstance(entry, dict) and SPILL_PATH_KEY in entry:
                    # Oversized stage: the stream spilled to a worker-local
                    # file; stream it back framed and delete it.
                    path = entry[SPILL_PATH_KEY]
                    try:
                        send_edge_stream(
                            channel, task_id, edge_id, iter_file_frames(path, chunk_size)
                        )
                    finally:
                        try:
                            os.unlink(path)
                        except OSError:
                            pass
                else:
                    send_edge_stream(
                        channel, task_id, edge_id, iter_encoded_chunks(entry, chunk_size)
                    )
        channel.send({"type": MSG_RESULT, "task_id": task_id, "report": report})
    finally:
        shutil.rmtree(spill_directory, ignore_errors=True)


def run_worker(address: str, retry_seconds: float = 10.0) -> int:
    """The worker state machine; returns the process exit code."""
    # Chaos tests arm fault points inside separately exec'd workers through
    # the PASH_FAULTS environment variable (see repro.resilience.fault).
    fault_injection.install_from_environ()
    host, port = parse_address(address)
    try:
        sock = _connect_with_retry(host, port, retry_seconds)
    except OSError as exc:
        print(f"pash-worker: cannot reach coordinator {address}: {exc}", file=sys.stderr)
        return 1
    channel = MessageSocket(sock)
    stop = threading.Event()
    try:
        channel.send(
            {
                "type": MSG_REGISTER,
                "pid": os.getpid(),
                "cores": _usable_cores(),
                "version": PROTOCOL_VERSION,
            }
        )
        welcome = channel.recv()
        if welcome is None or welcome.get("type") != MSG_WELCOME:
            print("pash-worker: coordinator refused registration", file=sys.stderr)
            return 1
        heartbeat = threading.Thread(
            target=_heartbeat_loop,
            args=(channel, float(welcome.get("heartbeat_interval", 0.5)), stop),
            daemon=True,
        )
        heartbeat.start()

        pending: Dict[int, _PendingTask] = {}
        while True:
            try:
                message = channel.recv()
            except (ProtocolError, OSError):
                return 1
            if message is None:
                return 1  # coordinator vanished without SHUTDOWN
            kind = message["type"]
            if kind == MSG_SHUTDOWN:
                return 0
            if kind == MSG_ACK or kind == MSG_HEARTBEAT:
                continue
            if kind == MSG_TASK:
                task = _PendingTask(message)
                if task.complete():  # no input edges: run immediately
                    _execute_task(channel, task)
                else:
                    pending[message["task_id"]] = task
                continue
            if kind == MSG_CHUNK:
                task = pending.get(message["task_id"])
                if task is not None:
                    task.frames[message["edge_id"]].append(message["data"])
                continue
            if kind == MSG_EDGE_END:
                task = pending.get(message["task_id"])
                if task is None:
                    continue
                task.ended[message["edge_id"]] = True
                if task.complete():
                    del pending[message["task_id"]]
                    _execute_task(channel, task)
                continue
            # Unknown message types are ignored for forward compatibility.
    except (OSError, ProtocolError) as exc:
        print(f"pash-worker: connection error: {exc}", file=sys.stderr)
        return 1
    finally:
        stop.set()
        channel.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pash-worker",
        description="Execute PaSh dataflow nodes on behalf of a cluster coordinator.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to register with",
    )
    parser.add_argument(
        "--retry-seconds",
        type=float,
        default=10.0,
        metavar="S",
        help="keep retrying the initial connection for this long "
        "(lets workers start before the coordinator listens; default 10)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        parse_address(arguments.connect)
    except ValueError as exc:
        print(f"pash-worker: {exc}", file=sys.stderr)
        return 2
    return run_worker(arguments.connect, retry_seconds=arguments.retry_seconds)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
