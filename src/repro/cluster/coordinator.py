"""The cluster coordinator: shard a dataflow graph across socket workers.

Sharding policy (the location-independence argument, §4.2 of the paper):

* **remote-eligible** — nodes that stream statelessly
  (:func:`repro.runtime.executor.node_streams_statelessly`: stateless
  commands and fused stateless chains with one data input).  These are
  exactly the copies the parallelize pass fans out, they carry no
  cross-batch state, and their evaluation is byte-identical anywhere — so
  they shard across workers.
* **coordinator-local** — everything else: splits, concatenations,
  aggregators, relays, sort-likes, and any node when the environment
  carries a custom (unpicklable) command registry.  Stateful nodes need
  the whole stream and sit at fan-in points whose inputs already live
  here, so keeping them local avoids a round trip that buys nothing.

Execution materializes every edge in a coordinator-side :class:`EdgeStore`
(spilling oversized streams to disk) and walks the graph as a ready-set task
queue: local nodes evaluate inline through
:func:`repro.runtime.executor.evaluate_node`, remote-eligible nodes are
pickled to an idle worker with their input streams as chunk frames.  Because
a task's inputs are fully materialized *before* dispatch, tasks are
idempotent: when a worker dies (socket EOF or heartbeat timeout) its
in-flight task is requeued to another worker and produces the same bytes.
Output commit is at-most-once — a task's streams enter the store exactly
once, on the first RESULT — so a requeue can never duplicate data.

Failure semantics: a worker that *reports* an execution error fails the run
cleanly (:class:`~repro.runtime.executor.ExecutionError`, surfaced like any
backend failure); a worker that *dies* triggers requeue; losing every worker
with remote tasks still pending fails cleanly; and the whole run is bounded
by ``report_timeout_seconds`` — no outcome hangs.
"""

from __future__ import annotations

import itertools
import os
import queue as queue_module
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Set, Tuple

from repro.cluster.protocol import (
    MSG_ACK,
    MSG_CHUNK,
    MSG_EDGE_END,
    MSG_HEARTBEAT,
    MSG_REGISTER,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    MessageSocket,
    ProtocolError,
    iter_file_frames,
    parse_address,
    recv_message,
)
from repro.commands.base import Stream
from repro.commands.registry import standard_registry
from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import DFGNode
from repro.engine.api import EngineResult, ExecutionBackend
from repro.engine.channels import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_SPILL_THRESHOLD,
    iter_decoded_lines,
    iter_encoded_chunks,
)
from repro.engine.metrics import EngineMetrics, NodeMetrics
from repro.obs.metrics import counter_inc, gauge_set, record_engine_run
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience import fault as fault_injection
from repro.resilience.errors import wrap_capacity_error
from repro.resilience.fault import FaultPlan
from repro.runtime.executor import (
    ExecutionEnvironment,
    ExecutionError,
    ExecutionResult,
    deliver_output,
    evaluate_node,
    node_streams_statelessly,
)

_worker_ids = itertools.count(1)


def remote_eligible(node: DFGNode) -> bool:
    """Whether a node may execute on a remote worker (the sharding policy).

    Exactly the engine's statelessness gate: a node that evaluates one line
    batch at a time with no cross-batch state produces identical bytes on
    any host, so shipping it is safe.  Everything else (splits, cats,
    aggregators, relays, sort-likes, multi-input commands) stays on the
    coordinator.
    """
    return node_streams_statelessly(node)


@dataclass
class ClusterOptions:
    """Knobs of the cluster execution tier."""

    #: Number of workers to run with.  Without ``connect`` the coordinator
    #: spawns this many localhost ``pash-worker`` processes itself; with
    #: ``connect`` it waits for this many external registrations.
    workers: int = 2
    #: ``HOST:PORT`` the coordinator listens on for externally-started
    #: workers (``pash-worker --connect HOST:PORT``).  ``None`` = localhost
    #: mode: bind an ephemeral port and spawn the workers locally.
    connect: Optional[str] = None
    #: Seconds between worker heartbeats.
    heartbeat_interval: float = 0.5
    #: Seconds of heartbeat silence after which a worker is declared lost
    #: and its in-flight task requeued.
    heartbeat_timeout: float = 10.0
    #: How long to wait for the expected workers to register at startup.
    register_timeout_seconds: float = 30.0
    #: Overall per-graph deadline (same meaning as the scheduler's knob).
    report_timeout_seconds: float = 120.0
    #: Exec real host binaries in workers when possible (remote tasks only
    #: run them on single-input single-output command nodes, like the pool).
    use_host_commands: bool = False
    #: Chunk size for socket edge frames and store encoding.
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Bytes beyond which a coordinator-side edge value spills to disk.
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    #: Directory for coordinator spill files (None = system temp).
    spill_directory: Optional[str] = None
    #: Interpreter for locally-spawned workers (None = ``sys.executable``).
    python_executable: Optional[str] = None
    #: Fault-injection plan shipped with every task message (chaos testing;
    #: None = no injection).  Each worker re-arms its own pristine copy.
    fault_plan: Optional[FaultPlan] = None


# ---------------------------------------------------------------------------
# Edge storage with spill fallback
# ---------------------------------------------------------------------------


class _EdgeSink:
    """Accumulates one remote edge's incoming chunk frames, spilling when big.

    Nothing is visible to consumers until :meth:`commit` — the at-most-once
    half of the requeue story: a lost worker's partial stream is abandoned,
    never merged.
    """

    def __init__(self, store: "EdgeStore", edge_id: int) -> None:
        self.store = store
        self.edge_id = edge_id
        self._buffer = bytearray()
        self._file = None
        self._path: Optional[str] = None

    def write(self, frame: bytes) -> None:
        if self._file is None and len(self._buffer) + len(frame) <= self.store.spill_threshold:
            self._buffer += frame
            return
        fault_injection.fire(fault_injection.SPILL_WRITE, len(frame))
        try:
            if self._file is None:
                handle, self._path = tempfile.mkstemp(
                    prefix="pash-edge-", suffix=".spill", dir=self.store.directory
                )
                self._file = os.fdopen(handle, "wb")
                if self._buffer:
                    self._file.write(self._buffer)
                    self._buffer.clear()
            self._file.write(frame)
        except OSError as exc:
            raise wrap_capacity_error(
                exc, "spill:write", self._path or self.store.directory, len(frame)
            ) from exc

    def commit(self) -> None:
        if self._file is not None:
            self._file.close()
            self.store.put_spilled(self.edge_id, self._path)
            self._file = None
            self._path = None
            return
        self.store.put_lines(
            self.edge_id, list(iter_decoded_lines(iter([bytes(self._buffer)])))
        )

    def abandon(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None
                if self._path is not None:
                    try:
                        os.unlink(self._path)
                    except OSError:
                        pass
                    self._path = None
        self._buffer.clear()


class EdgeStore:
    """Every materialized edge value of one graph run, memory- or disk-backed.

    Small streams live as line lists; anything beyond ``spill_threshold``
    estimated bytes lives as an engine-framed file in a run-scoped directory
    that is removed unconditionally when the run ends.
    """

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        directory: Optional[str] = None,
    ) -> None:
        self.chunk_size = max(1, chunk_size)
        self.spill_threshold = max(0, spill_threshold)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.directory = tempfile.mkdtemp(prefix="pash-cluster-run-", dir=directory)
        self._memory: Dict[int, List[str]] = {}
        self._spilled: Dict[int, str] = {}

    def has(self, edge_id: int) -> bool:
        return edge_id in self._memory or edge_id in self._spilled

    def put_lines(self, edge_id: int, lines: List[str]) -> None:
        estimated = sum(len(line) + 1 for line in lines)
        if estimated > self.spill_threshold:
            fault_injection.fire(fault_injection.SPILL_WRITE, estimated)
            path = None
            try:
                handle, path = tempfile.mkstemp(
                    prefix="pash-edge-", suffix=".spill", dir=self.directory
                )
                with os.fdopen(handle, "wb") as spill:
                    for frame in iter_encoded_chunks(lines, self.chunk_size):
                        spill.write(frame)
            except OSError as exc:
                raise wrap_capacity_error(
                    exc, "spill:write", path or self.directory, estimated
                ) from exc
            self._spilled[edge_id] = path
            return
        self._memory[edge_id] = list(lines)

    def put_spilled(self, edge_id: int, path: str) -> None:
        self._spilled[edge_id] = path

    def sink(self, edge_id: int) -> _EdgeSink:
        return _EdgeSink(self, edge_id)

    def lines(self, edge_id: int) -> List[str]:
        if edge_id in self._memory:
            return list(self._memory[edge_id])
        path = self._spilled[edge_id]
        return list(iter_decoded_lines(iter_file_frames(path, self.chunk_size)))

    def frames(self, edge_id: int) -> Iterator[bytes]:
        """Engine-framed byte chunks (what travels over a task's socket)."""
        if edge_id in self._memory:
            return iter_encoded_chunks(self._memory[edge_id], self.chunk_size)
        return iter_file_frames(self._spilled[edge_id], self.chunk_size)

    def close(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)


# ---------------------------------------------------------------------------
# Worker handles
# ---------------------------------------------------------------------------


@dataclass
class ClusterWorkerHandle:
    """Coordinator-side state for one registered worker connection."""

    worker_id: int
    channel: MessageSocket
    pid: int = 0
    cores: int = 1
    last_seen: float = field(default_factory=time.monotonic)
    alive: bool = True
    #: node_id of the task currently dispatched to this worker, if any.
    task: Optional[int] = None


class _RemoteTask:
    """One dispatched task: its node, owner, and uncommitted output sinks."""

    def __init__(self, node: DFGNode, handle: ClusterWorkerHandle, sinks: Dict[int, _EdgeSink]):
        self.node = node
        self.handle = handle
        self.sinks = sinks

    def abandon(self) -> None:
        for sink in self.sinks.values():
            sink.abandon()


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


class ClusterCoordinator:
    """Owns the worker fleet and executes graphs against it."""

    def __init__(self, options: Optional[ClusterOptions] = None, tracer: Optional[Tracer] = None):
        self.options = options or ClusterOptions()
        self.tracer = tracer or NULL_TRACER
        self.workers: List[ClusterWorkerHandle] = []
        self.processes: List[subprocess.Popen] = []
        self.address: Optional[Tuple[str, int]] = None
        self._listener: Optional[socket.socket] = None
        self._inbox: "queue_module.Queue" = queue_module.Queue()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def spawned(self) -> int:
        """Localhost worker processes this coordinator created."""
        return len(self.processes)

    def start(self) -> None:
        """Listen, (maybe) spawn localhost workers, and wait for registration."""
        if self._started:
            return
        if self.options.connect is not None:
            try:
                host, port = parse_address(self.options.connect)
            except ValueError as exc:
                raise ExecutionError(str(exc)) from exc
        else:
            host, port = "127.0.0.1", 0
        try:
            self._listener = socket.create_server((host, port))
        except OSError as exc:
            raise ExecutionError(f"cluster coordinator cannot listen on {host}:{port}: {exc}")
        self.address = self._listener.getsockname()[:2]
        self._listener.settimeout(0.25)
        expected = max(1, self.options.workers)
        if self.options.connect is None:
            self._spawn_local_workers(expected)
        deadline = time.monotonic() + self.options.register_timeout_seconds
        while len(self.workers) < expected:
            dead = [p for p in self.processes if p.poll() is not None]
            if dead:
                self.shutdown()
                raise ExecutionError(
                    f"local pash-worker exited with code {dead[0].returncode} "
                    "before registering"
                )
            if time.monotonic() > deadline:
                registered = len(self.workers)
                self.shutdown()
                raise ExecutionError(
                    f"cluster startup timed out: {registered}/{expected} worker(s) "
                    f"registered within {self.options.register_timeout_seconds}s"
                )
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            self._register(sock)
        self._started = True

    def _spawn_local_workers(self, count: int) -> None:
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        host, port = self.address
        command = [
            self.options.python_executable or sys.executable,
            "-m",
            "repro.cluster.worker",
            "--connect",
            f"{host}:{port}",
            "--retry-seconds",
            "30",
        ]
        for _ in range(count):
            self.processes.append(
                subprocess.Popen(command, env=env, stdin=subprocess.DEVNULL)
            )

    def _register(self, sock: socket.socket) -> None:
        sock.settimeout(10.0)
        try:
            message = recv_message(sock)
        except (ProtocolError, OSError):
            sock.close()
            return
        if (
            not message
            or message.get("type") != MSG_REGISTER
            or message.get("version") != PROTOCOL_VERSION
        ):
            sock.close()
            return
        sock.settimeout(None)
        handle = ClusterWorkerHandle(
            worker_id=next(_worker_ids),
            channel=MessageSocket(sock),
            pid=int(message.get("pid", 0)),
            cores=int(message.get("cores", 1)),
        )
        try:
            handle.channel.send(
                {
                    "type": MSG_WELCOME,
                    "worker_id": handle.worker_id,
                    "heartbeat_interval": self.options.heartbeat_interval,
                }
            )
        except OSError:
            handle.channel.close()
            return
        receiver = threading.Thread(
            target=self._receive_loop, args=(handle,), daemon=True,
            name=f"pash-cluster-recv-{handle.worker_id}",
        )
        receiver.start()
        self.workers.append(handle)

    def _receive_loop(self, handle: ClusterWorkerHandle) -> None:
        try:
            while True:
                message = handle.channel.recv()
                if message is None:
                    break
                self._inbox.put((handle, message))
        except (OSError, ProtocolError):
            pass
        self._inbox.put((handle, None))

    def shutdown(self) -> None:
        """Stop every worker and reap locally-spawned processes."""
        for handle in self.workers:
            if handle.alive:
                try:
                    handle.channel.send({"type": MSG_SHUTDOWN})
                except OSError:
                    pass
            handle.alive = False
            handle.channel.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for process in self.processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self._started = False

    # -- execution -----------------------------------------------------------

    def execute(
        self, graph: DataflowGraph, environment: Optional[ExecutionEnvironment] = None
    ) -> Tuple[ExecutionResult, EngineMetrics]:
        """Run one graph across the fleet; mirrors the scheduler's contract."""
        environment = environment or ExecutionEnvironment()
        graph.validate()
        started = time.perf_counter()
        metrics = EngineMetrics(backend="cluster")
        result = ExecutionResult()
        if not graph.nodes:
            self._deliver(graph, {}, environment, result)
            metrics.elapsed_seconds = time.perf_counter() - started
            return result, metrics
        if not self._started:
            self.start()
        metrics.cluster_workers = sum(1 for handle in self.workers if handle.alive)
        run = _GraphRun(self, graph, environment, metrics)
        try:
            with self.tracer.span(
                "engine:run",
                "scheduler",
                nodes=len(graph.nodes),
                cluster_workers=metrics.cluster_workers,
            ):
                # Captured inside engine:run so remote worker spans (shipped
                # home through RESULT reports) parent under it, like the pool.
                worker_trace = self.tracer.context()
                run.run(worker_trace)
            self._deliver(graph, run.store, environment, result)
            result.edge_values.update(run.output_values)
        finally:
            run.close()
        metrics.nodes.sort(key=lambda node: node.node_id)
        metrics.elapsed_seconds = time.perf_counter() - started
        return result, metrics

    def _resolve_input(self, edge: Edge, environment: ExecutionEnvironment) -> Stream:
        """Materialize a graph-input edge from the environment."""
        if edge.kind is EdgeKind.STDIN:
            return list(environment.stdin)
        if edge.kind is EdgeKind.FILE:
            try:
                return environment.filesystem.read(edge.name or "")
            except FileNotFoundError as exc:
                raise ExecutionError(str(exc)) from exc
        return []

    def _deliver(
        self,
        graph: DataflowGraph,
        store: "EdgeStore | Dict[int, Stream]",
        environment: ExecutionEnvironment,
        result: ExecutionResult,
    ) -> None:
        values = store if isinstance(store, dict) else None
        for edge in graph.output_edges():
            if values is not None:
                stream = values.get(edge.edge_id)
            elif store.has(edge.edge_id):
                stream = store.lines(edge.edge_id)
            else:
                stream = None
            if stream is None:
                stream = self._resolve_input(edge, environment) if edge.source is None else []
            deliver_output(edge, stream, result, environment.filesystem)


class _GraphRun:
    """All per-graph scheduling state: ready queues, in-flight tasks, store."""

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        graph: DataflowGraph,
        environment: ExecutionEnvironment,
        metrics: EngineMetrics,
    ) -> None:
        self.coordinator = coordinator
        self.options = coordinator.options
        self.tracer = coordinator.tracer
        self.graph = graph
        self.environment = environment
        self.metrics = metrics
        self.store = EdgeStore(
            chunk_size=self.options.chunk_size,
            spill_threshold=self.options.spill_threshold,
            directory=self.options.spill_directory,
        )
        #: Custom registries cannot be pickled to a remote process; the run
        #: degrades to coordinator-local execution (still correct, not wide).
        self.remote_ok = environment.registry is standard_registry()
        self.ready_local: Deque[int] = deque()
        self.ready_remote: Deque[int] = deque()
        self.inflight: Dict[int, _RemoteTask] = {}
        self.done: Set[int] = set()
        self.waiting: Dict[int, Set[int]] = {}
        self.consumers: Dict[int, List[int]] = {}
        self.output_values: Dict[int, Stream] = {}

    # -- setup ---------------------------------------------------------------

    def _seed(self) -> None:
        for edge in self.graph.input_edges():
            self.store.put_lines(
                edge.edge_id, self.coordinator._resolve_input(edge, self.environment)
            )
        for node_id, node in self.graph.nodes.items():
            self.waiting[node_id] = {
                edge_id for edge_id in node.inputs if not self.store.has(edge_id)
            }
            for edge_id in node.inputs:
                self.consumers.setdefault(edge_id, []).append(node_id)
        for node in self.graph.topological_order():
            if not self.waiting[node.node_id]:
                self._enqueue(node.node_id)

    def _enqueue(self, node_id: int) -> None:
        node = self.graph.node(node_id)
        if self.remote_ok and remote_eligible(node):
            self.ready_remote.append(node_id)
        else:
            self.ready_local.append(node_id)

    # -- main loop -----------------------------------------------------------

    def run(self, worker_trace) -> None:
        self._seed()
        deadline = time.monotonic() + self.options.report_timeout_seconds
        total = len(self.graph.nodes)
        while len(self.done) < total:
            while self.ready_local:
                self._run_local(self.ready_local.popleft())
            while self.ready_remote and self._idle_worker() is not None:
                node_id = self.ready_remote.popleft()
                self._dispatch(self._idle_worker(), node_id, worker_trace)
            if len(self.done) >= total:
                break
            if self.ready_local:
                continue
            if (self.ready_remote or self.inflight) and not self._any_alive():
                raise ExecutionError(
                    "cluster run failed: every worker was lost with "
                    f"{len(self.ready_remote) + len(self.inflight)} task(s) pending"
                )
            if not self.inflight and not self.ready_remote:
                raise ExecutionError("cluster scheduling stalled: no runnable node")
            self._pump(deadline)

    def close(self) -> None:
        for task in self.inflight.values():
            task.abandon()
        self.inflight.clear()
        self.store.close()

    # -- local execution -----------------------------------------------------

    def _run_local(self, node_id: int) -> None:
        node = self.graph.node(node_id)
        inputs = [self.store.lines(edge_id) for edge_id in node.inputs]
        started = time.perf_counter()
        with self.tracer.span(
            f"node:{node.label()}", "worker", node_id=node_id, kind=node.kind,
            location="coordinator",
        ):
            try:
                outputs = evaluate_node(node, inputs, self.environment.registry)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(f"node {node.label()} failed: {exc}") from exc
        wall = time.perf_counter() - started
        if node.outputs and len(outputs) != len(node.outputs):
            raise ExecutionError(
                f"node {node.label()} produced {len(outputs)} streams for "
                f"{len(node.outputs)} output edges"
            )
        for edge_id, stream in zip(node.outputs, outputs):
            self.store.put_lines(edge_id, stream)
        bytes_in = sum(len(line) + 1 for stream in inputs for line in stream)
        lines_in = sum(len(stream) for stream in inputs)
        bytes_out = sum(
            len(line) + 1 for stream in outputs[: len(node.outputs)] for line in stream
        )
        lines_out = sum(len(stream) for stream in outputs[: len(node.outputs)])
        self.metrics.nodes.append(
            NodeMetrics(
                node_id=node_id,
                label=node.label(),
                kind=node.kind,
                pid=os.getpid(),
                wall_seconds=wall,
                compute_seconds=wall,
                bytes_in=bytes_in,
                bytes_out=bytes_out,
                lines_in=lines_in,
                lines_out=lines_out,
            )
        )
        self._complete(node_id)

    # -- remote execution ----------------------------------------------------

    def _any_alive(self) -> bool:
        return any(handle.alive for handle in self.coordinator.workers)

    def _idle_worker(self) -> Optional[ClusterWorkerHandle]:
        for handle in self.coordinator.workers:
            if handle.alive and handle.task is None:
                return handle
        return None

    def _dispatch(self, handle: ClusterWorkerHandle, node_id: int, worker_trace) -> None:
        node = self.graph.node(node_id)
        sinks = {edge_id: self.store.sink(edge_id) for edge_id in node.outputs}
        handle.task = node_id
        self.inflight[node_id] = _RemoteTask(node, handle, sinks)
        try:
            handle.channel.send(
                {
                    "type": MSG_TASK,
                    "task_id": node_id,
                    "node": node,
                    "inputs": list(node.inputs),
                    "outputs": list(node.outputs),
                    "use_host_commands": self.options.use_host_commands,
                    "chunk_size": self.options.chunk_size,
                    "spill_threshold": self.options.spill_threshold,
                    "trace": worker_trace,
                    "faults": self.options.fault_plan,
                }
            )
            for edge_id in node.inputs:
                for frame in self.store.frames(edge_id):
                    handle.channel.send(
                        {
                            "type": MSG_CHUNK,
                            "task_id": node_id,
                            "edge_id": edge_id,
                            "data": frame,
                        }
                    )
                handle.channel.send(
                    {"type": MSG_EDGE_END, "task_id": node_id, "edge_id": edge_id}
                )
        except (OSError, ProtocolError):
            self._worker_lost(handle)

    def _worker_lost(self, handle: ClusterWorkerHandle) -> None:
        """Declare a worker dead and requeue whatever it was running."""
        if not handle.alive:
            return
        handle.alive = False
        handle.channel.close()
        node_id, handle.task = handle.task, None
        if node_id is not None and node_id in self.inflight:
            task = self.inflight.pop(node_id)
            task.abandon()
            # At-most-once commit: nothing of the lost attempt reached the
            # store, so re-running on another worker yields identical bytes.
            self.ready_remote.appendleft(node_id)
            self.metrics.requeued_tasks += 1
            counter_inc(
                "pash_cluster_workers_lost_total",
                1,
                "Cluster workers declared dead mid-run.",
            )

    def _pump(self, deadline: float) -> None:
        """Process one inbox slice: results, frames, heartbeats, losses."""
        try:
            item = self.coordinator._inbox.get(timeout=0.25)
        except queue_module.Empty:
            item = None
        now = time.monotonic()
        if item is not None:
            handle, message = item
            if message is None:
                self._worker_lost(handle)
            else:
                handle.last_seen = now
                self._handle_message(handle, message)
        lag = 0.0
        for handle in self.coordinator.workers:
            if not handle.alive:
                continue
            lag = max(lag, now - handle.last_seen)
            if now - handle.last_seen > self.options.heartbeat_timeout:
                self._worker_lost(handle)
        gauge_set(
            "pash_cluster_heartbeat_lag_seconds",
            lag,
            "Worst-case seconds since any live cluster worker was heard from.",
        )
        if time.monotonic() > deadline:
            raise ExecutionError(
                f"cluster execution wedged: {len(self.inflight)} task(s) never "
                f"reported (timeout {self.options.report_timeout_seconds}s)"
            )

    def _handle_message(self, handle: ClusterWorkerHandle, message: Dict) -> None:
        kind = message["type"]
        if kind == MSG_HEARTBEAT:
            return
        task_id = message.get("task_id")
        task = self.inflight.get(task_id)
        if task is None or task.handle is not handle:
            return  # stale traffic from a requeued or completed task
        if kind == MSG_CHUNK:
            task.sinks[message["edge_id"]].write(message["data"])
            return
        if kind == MSG_EDGE_END:
            return  # commit happens atomically at RESULT time
        if kind == MSG_RESULT:
            self._finish_remote(handle, task_id, task, message["report"])

    def _finish_remote(
        self,
        handle: ClusterWorkerHandle,
        node_id: int,
        task: _RemoteTask,
        report: Dict,
    ) -> None:
        del self.inflight[node_id]
        handle.task = None
        if report.get("error"):
            task.abandon()
            raise ExecutionError(
                f"cluster worker {handle.worker_id} failed on "
                f"{report.get('label', task.node.label())}: {report['error']}"
            )
        for sink in task.sinks.values():
            sink.commit()
        try:
            handle.channel.send({"type": MSG_ACK, "task_id": node_id})
        except OSError:
            pass  # the outputs are committed; a dying worker changes nothing
        for span in report.get("spans") or ():
            span.set(cluster_worker=handle.worker_id)
            self.tracer.record(span)
        self.metrics.remote_tasks += 1
        self.metrics.nodes.append(
            NodeMetrics(
                node_id=report["node_id"],
                label=report["label"],
                kind=report["kind"],
                pid=report["pid"],
                wall_seconds=report["wall_seconds"],
                compute_seconds=report.get("compute_seconds", 0.0),
                bytes_in=report["bytes_in"],
                bytes_out=report["bytes_out"],
                lines_in=report["lines_in"],
                lines_out=report["lines_out"],
                host_command=report["host_command"],
                peak_buffered_bytes=report.get("peak_buffered_bytes", 0),
                spilled_bytes=report.get("spilled_bytes", 0),
                spill_events=report.get("spill_events", 0),
            )
        )
        self._complete(node_id)

    # -- completion ----------------------------------------------------------

    def _complete(self, node_id: int) -> None:
        node = self.graph.node(node_id)
        self.done.add(node_id)
        for edge_id in node.outputs:
            edge = self.graph.edge(edge_id)
            if edge.target is None:
                self.output_values[edge_id] = self.store.lines(edge_id)
            for consumer in self.consumers.get(edge_id, ()):
                pending = self.waiting[consumer]
                if edge_id in pending:
                    pending.discard(edge_id)
                    if not pending:
                        self._enqueue(consumer)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ClusterBackend(ExecutionBackend):
    """The ``cluster`` entry in the engine's backend registry.

    Constructor keywords become :class:`ClusterOptions` fields, mirroring the
    parallel backend: ``engine.run(graph, backend="cluster", workers=4)``
    runs a 4-worker localhost cluster, ``connect="HOST:PORT"`` listens there
    for externally-started ``pash-worker`` processes instead.  Each
    ``execute`` call owns its fleet — started before the run, shut down
    unconditionally after — so no worker process outlives the result.
    """

    name = "cluster"

    def __init__(
        self,
        options: Optional[ClusterOptions] = None,
        tracer: Optional[Tracer] = None,
        **overrides,
    ) -> None:
        import dataclasses

        if options is None:
            options = ClusterOptions(**overrides)
        elif overrides:
            options = dataclasses.replace(options, **overrides)
        self.options = options
        self.tracer = tracer or NULL_TRACER

    def execute(self, graph: DataflowGraph, environment: ExecutionEnvironment) -> EngineResult:
        started = time.perf_counter()
        coordinator = ClusterCoordinator(self.options, tracer=self.tracer)
        mark = self.tracer.mark()
        try:
            result, metrics = coordinator.execute(graph, environment)
        finally:
            coordinator.shutdown()
        elapsed = time.perf_counter() - started
        metrics.processes_spawned += coordinator.spawned
        record_engine_run(metrics, backend="cluster")
        wrapped = self._wrap(result, elapsed, metrics)
        wrapped.spans = self.tracer.since(mark)
        return wrapped
