"""The standard annotation library (PaSh's "data-parallel standard library").

The library maps command names to :class:`AnnotationRecord` objects.  It
covers the POSIX/GNU commands exercised by the paper's evaluation plus the
custom commands of the web-indexing use case (§6.4).  Records either come
from the textual DSL (for flag-sensitive commands, mirroring the paper's
example for ``comm``) or are built programmatically for the simple cases.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.dsl import parse_annotations
from repro.annotations.model import (
    AnnotationRecord,
    CommandInvocation,
    IOSpec,
    classify_invocation,
    simple_record,
)

S = ParallelizabilityClass.STATELESS
P = ParallelizabilityClass.PARALLELIZABLE_PURE
N = ParallelizabilityClass.NON_PARALLELIZABLE_PURE
E = ParallelizabilityClass.SIDE_EFFECTFUL


class AnnotationLibrary:
    """A queryable collection of annotation records."""

    def __init__(self, records: Optional[Iterable[AnnotationRecord]] = None) -> None:
        self._records: Dict[str, AnnotationRecord] = {}
        for record in records or ():
            self.register(record)

    # -- registration --------------------------------------------------------

    def register(self, record: AnnotationRecord) -> None:
        """Add or replace the record for a command."""
        self._records[record.command] = record

    def register_many(self, records: Iterable[AnnotationRecord]) -> None:
        for record in records:
            self.register(record)

    def register_dsl(self, text: str) -> None:
        """Register records written in the Appendix-A DSL."""
        self.register_many(parse_annotations(text))

    # -- queries --------------------------------------------------------------

    def __contains__(self, command: str) -> bool:
        return command in self._records

    def __len__(self) -> int:
        return len(self._records)

    def commands(self) -> Iterable[str]:
        return sorted(self._records)

    def lookup(self, command: str) -> Optional[AnnotationRecord]:
        """Return the record for ``command`` (basename-insensitive), or None."""
        if command in self._records:
            return self._records[command]
        basename = command.rsplit("/", 1)[-1]
        return self._records.get(basename)

    def classify(self, command: str, arguments: Optional[Iterable[str]] = None) -> ParallelizabilityClass:
        """Classify a command invocation, defaulting to side-effectful."""
        invocation = CommandInvocation(command, list(arguments or []))
        return classify_invocation(self.lookup(command), invocation)

    def io_spec(self, command: str, arguments: Optional[Iterable[str]] = None):
        """Return the (inputs, outputs) assignment for an invocation."""
        record = self.lookup(command)
        invocation = CommandInvocation(command, list(arguments or []))
        if record is None:
            return [], []
        assignment = record.classify(invocation)
        return assignment.inputs, assignment.outputs

    def aggregator_for(self, command: str) -> Optional[str]:
        """Name of the aggregator used when parallelizing ``command``."""
        record = self.lookup(command)
        return record.aggregator if record else None

    def copy(self) -> "AnnotationLibrary":
        return AnnotationLibrary(self._records.values())


# ---------------------------------------------------------------------------
# Standard records
# ---------------------------------------------------------------------------


_FLAG_SENSITIVE_DSL = r"""
comm {
| otherwise => (P, [args[0], args[1]], [stdout])
}
cat {
| -n => (P, [args[0:]], [stdout])
| -b => (P, [args[0:]], [stdout])
| otherwise => (S, [args[0:]], [stdout])
}
tr {
| -d => (S, [stdin], [stdout])
| -s => (S, [stdin], [stdout])
| otherwise => (S, [stdin], [stdout])
}
uniq {
| -c => (P, [stdin], [stdout])
| otherwise => (P, [stdin], [stdout])
}
wc {
| otherwise => (P, [args[0:]], [stdout])
}
head {
| otherwise => (P, [args[0:]], [stdout])
}
tail {
| otherwise => (P, [args[0:]], [stdout])
}
paste {
| otherwise => (P, [args[0:]], [stdout])
}
grep {
| -c => (P, [args[1:]], [stdout])
| -n => (N, [args[1:]], [stdout])
| otherwise => (S, [args[1:]], [stdout])
}
sed {
| -n => (E, [stdin], [stdout])
| otherwise => (S, [stdin], [stdout])
}
"""


def _stateless(names: Iterable[str]) -> Iterable[AnnotationRecord]:
    for name in names:
        yield simple_record(name, S)


def _build_records() -> Dict[str, AnnotationRecord]:
    records: Dict[str, AnnotationRecord] = {}

    def add(record: AnnotationRecord) -> None:
        records[record.command] = record

    # Flag-sensitive commands from the DSL.
    for record in parse_annotations(_FLAG_SENSITIVE_DSL):
        add(record)

    # Stateless commands: pure map/filter over lines.
    stateless_names = [
        "basename",
        "col",
        "cut",
        "dirname",
        "expand",
        "fmt",
        "fold",
        "gunzip",
        "gzip",
        "head_stream",  # internal helper used by split pipelines
        "iconv",
        "nl_strip",
        "rev",
        "tee_devnull",
        "unexpand",
        "xargs",
        "url-extract",
        "word-stem",
        "html-to-text",
        "strip-punct",
        "lowercase",
        "bigrams",
    ]
    for record in _stateless(stateless_names):
        add(record)

    # grep's pattern operand is a configuration input replicated to all copies;
    # its only pure variant (-c) is merged by summing the partial counts.
    records["grep"].configuration_operands = (0,)
    records["grep"].aggregator = "sum"

    # Options that consume the next argument as a value, so that values such
    # as `head -n 10`'s count are never mistaken for file operands.
    value_flags = {
        "head": ("-n", "-c"),
        "tail": ("-n", "-c"),
        "cut": ("-d", "-f", "-c", "-b"),
        "sort": ("-k", "-t", "-o", "-S", "--parallel"),
        "grep": ("-e", "-m", "-A", "-B", "-C", "-f"),
        "sed": ("-e",),
        "fold": ("-w",),
        "xargs": ("-n", "-I", "-P"),
        "awk": ("-F", "-v"),
        "uniq": ("-f", "-s", "-w"),
        "join": ("-t", "-j", "-o"),
        "paste": ("-d",),
        "nl": ("-s", "-w"),
        "comm": (),
        "split": ("-l", "-n", "-b"),
    }
    for command, flags in value_flags.items():
        if command in records:
            records[command].value_flags = flags

    # Parallelizable pure commands with their aggregators.
    add(simple_record("sort", P, inputs=[IOSpec.args_slice(0)], aggregator="merge_sort"))
    add(simple_record("tac", P, inputs=[IOSpec.args_slice(0)], aggregator="merge_tac"))
    add(simple_record("top", P, aggregator="merge_head"))
    add(simple_record("shuf", P, aggregator="concat"))

    records["cat"].aggregator = "concat"
    records["uniq"].aggregator = "merge_uniq"
    records["wc"].aggregator = "merge_wc"
    records["comm"].aggregator = "merge_comm"
    records["head"].aggregator = "merge_head"
    records["tail"].aggregator = "merge_tail"

    # Non-parallelizable pure commands.
    for name in ("sha1sum", "sha256sum", "md5sum", "cksum", "sum", "b2sum"):
        add(simple_record(name, N))
    add(
        simple_record(
            "diff", N, inputs=[IOSpec.arg(0), IOSpec.arg(1)], outputs=[IOSpec.stdout()]
        )
    )

    # Side-effectful commands (never parallelized).
    for name in (
        "curl",
        "wget",
        "cp",
        "mv",
        "rm",
        "mkdir",
        "mkfifo",
        "env",
        "date",
        "whoami",
        "uname",
        "finger",
        "chmod",
        "chown",
        "dd",
        "df",
        "du",
        "ln",
        "ls",
        "ps",
        "kill",
        "touch",
        "tee",
        "awk",
        "python",
        "node",
        "file",
        "find",
        "read",
        "echo",
        "printf",
        "test",
        "[",
        "set",
        "export",
        "cd",
        "wait",
        "trap",
        "eval",
    ):
        add(simple_record(name, E))

    return records


def standard_library() -> AnnotationLibrary:
    """Return a fresh copy of the standard annotation library."""
    return AnnotationLibrary(_build_records().values())


#: Aggregator names known to the runtime (see repro.runtime.aggregators).
KNOWN_AGGREGATORS = (
    "concat",
    "merge_sort",
    "merge_uniq",
    "merge_uniq_count",
    "merge_wc",
    "merge_tac",
    "merge_head",
    "merge_tail",
    "merge_comm",
    "sum",
)
