"""The four parallelizability classes of §3.1.

Classes form a hierarchy ordered by how hard a command is to parallelize:

``STATELESS < PARALLELIZABLE_PURE < NON_PARALLELIZABLE_PURE < SIDE_EFFECTFUL``

A command that is classified differently under different flags ends up in the
least parallelizable class among its active clauses (§3.2).
"""

from __future__ import annotations

import enum
import functools


@functools.total_ordering
class ParallelizabilityClass(enum.Enum):
    """Parallelizability class of a command invocation (Table 1)."""

    STATELESS = "stateless"
    PARALLELIZABLE_PURE = "pure"
    NON_PARALLELIZABLE_PURE = "non-parallelizable"
    SIDE_EFFECTFUL = "side-effectful"

    @property
    def rank(self) -> int:
        """Position in the hierarchy; larger means harder to parallelize."""
        return _RANKS[self]

    @property
    def symbol(self) -> str:
        """Single-letter symbol used in the paper's tables (S, P, N, E)."""
        return _SYMBOLS[self]

    @property
    def is_data_parallelizable(self) -> bool:
        """True for classes whose invocations PaSh can parallelize."""
        return self in (
            ParallelizabilityClass.STATELESS,
            ParallelizabilityClass.PARALLELIZABLE_PURE,
        )

    def __lt__(self, other: "ParallelizabilityClass") -> bool:
        if not isinstance(other, ParallelizabilityClass):
            return NotImplemented
        return self.rank < other.rank

    @classmethod
    def least_parallelizable(cls, *classes: "ParallelizabilityClass") -> "ParallelizabilityClass":
        """Return the hardest-to-parallelize class among ``classes``."""
        if not classes:
            raise ValueError("at least one class is required")
        return max(classes)

    @classmethod
    def from_keyword(cls, keyword: str) -> "ParallelizabilityClass":
        """Map an annotation-DSL keyword (or symbol) to a class."""
        normalized = keyword.strip().lower()
        if normalized in _KEYWORDS:
            return _KEYWORDS[normalized]
        raise ValueError(f"unknown parallelizability class keyword {keyword!r}")


_RANKS = {
    ParallelizabilityClass.STATELESS: 0,
    ParallelizabilityClass.PARALLELIZABLE_PURE: 1,
    ParallelizabilityClass.NON_PARALLELIZABLE_PURE: 2,
    ParallelizabilityClass.SIDE_EFFECTFUL: 3,
}

_SYMBOLS = {
    ParallelizabilityClass.STATELESS: "S",
    ParallelizabilityClass.PARALLELIZABLE_PURE: "P",
    ParallelizabilityClass.NON_PARALLELIZABLE_PURE: "N",
    ParallelizabilityClass.SIDE_EFFECTFUL: "E",
}

_KEYWORDS = {
    "stateless": ParallelizabilityClass.STATELESS,
    "s": ParallelizabilityClass.STATELESS,
    "pure": ParallelizabilityClass.PARALLELIZABLE_PURE,
    "parallelizable_pure": ParallelizabilityClass.PARALLELIZABLE_PURE,
    "p": ParallelizabilityClass.PARALLELIZABLE_PURE,
    "non-parallelizable": ParallelizabilityClass.NON_PARALLELIZABLE_PURE,
    "non_parallelizable": ParallelizabilityClass.NON_PARALLELIZABLE_PURE,
    "n": ParallelizabilityClass.NON_PARALLELIZABLE_PURE,
    "side-effectful": ParallelizabilityClass.SIDE_EFFECTFUL,
    "side_effectful": ParallelizabilityClass.SIDE_EFFECTFUL,
    "e": ParallelizabilityClass.SIDE_EFFECTFUL,
}

#: Short aliases used throughout the code base and tests.
STATELESS = ParallelizabilityClass.STATELESS
PARALLELIZABLE_PURE = ParallelizabilityClass.PARALLELIZABLE_PURE
NON_PARALLELIZABLE_PURE = ParallelizabilityClass.NON_PARALLELIZABLE_PURE
SIDE_EFFECTFUL = ParallelizabilityClass.SIDE_EFFECTFUL
