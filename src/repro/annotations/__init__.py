"""Parallelizability classes and the command annotation language (§3).

This package provides:

* :mod:`repro.annotations.classes` — the four parallelizability classes
  (stateless, parallelizable pure, non-parallelizable pure, side-effectful),
* :mod:`repro.annotations.model` — annotation records: per-command clauses
  guarded by flag predicates, mapping an invocation to its class and its
  input/output sequence,
* :mod:`repro.annotations.dsl` — a parser for the textual annotation language
  of Appendix A,
* :mod:`repro.annotations.library` — the standard annotation library covering
  the POSIX and GNU Coreutils commands used by the evaluation, plus the
  map/aggregate pairs PaSh ships for commands in the pure class, and
* :mod:`repro.annotations.study` — the parallelizability study behind Table 1.
"""

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.model import (
    AnnotationRecord,
    Clause,
    CommandInvocation,
    IOSpec,
    classify_invocation,
)
from repro.annotations.dsl import AnnotationParseError, parse_annotation, parse_annotations
from repro.annotations.library import AnnotationLibrary, standard_library
from repro.annotations.study import ParallelizabilityStudy, standard_study

__all__ = [
    "AnnotationLibrary",
    "AnnotationParseError",
    "AnnotationRecord",
    "Clause",
    "CommandInvocation",
    "IOSpec",
    "ParallelizabilityClass",
    "ParallelizabilityStudy",
    "classify_invocation",
    "parse_annotation",
    "parse_annotations",
    "standard_library",
    "standard_study",
]
