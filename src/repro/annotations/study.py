"""The parallelizability study behind Table 1.

The paper classifies every command of GNU Coreutils and of the POSIX utility
set into the four parallelizability classes.  This module records that
inventory and computes the per-class counts and percentages that make up
Table 1:

=======================  =========  =========
Class                    Coreutils  POSIX
=======================  =========  =========
Stateless                22 (21.1%) 28 (18%)
Parallelizable pure       8 (7.6%)   9 (5%)
Non-parallelizable pure  13 (12.4%) 13 (8.3%)
Side-effectful           57 (58.8%) 105 (67.8%)
=======================  =========  =========

The paper's percentages are computed against slightly larger denominators
than the row sums (the study also covered a handful of commands outside both
suites); this module reports both the raw counts — which match the paper
exactly — and percentages over the suite sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.annotations.classes import ParallelizabilityClass

S = ParallelizabilityClass.STATELESS
P = ParallelizabilityClass.PARALLELIZABLE_PURE
N = ParallelizabilityClass.NON_PARALLELIZABLE_PURE
E = ParallelizabilityClass.SIDE_EFFECTFUL


# ---------------------------------------------------------------------------
# GNU Coreutils inventory (100 commands)
# ---------------------------------------------------------------------------

COREUTILS_STATELESS: Tuple[str, ...] = (
    "base32", "base64", "basename", "cat", "cut", "dirname", "echo", "expand",
    "expr", "fold", "fmt", "join", "numfmt", "od", "paste", "pathchk",
    "printf", "realpath", "seq", "tr", "unexpand", "yes",
)

COREUTILS_PURE: Tuple[str, ...] = (
    "comm", "head", "nl", "sort", "tac", "tail", "uniq", "wc",
)

COREUTILS_NON_PARALLELIZABLE: Tuple[str, ...] = (
    "b2sum", "cksum", "factor", "md5sum", "ptx", "sha1sum", "sha224sum",
    "sha256sum", "sha384sum", "sha512sum", "shuf", "sum", "tsort",
)

COREUTILS_SIDE_EFFECTFUL: Tuple[str, ...] = (
    "arch", "chcon", "chgrp", "chmod", "chown", "chroot", "cp", "dd", "df",
    "dir", "dircolors", "du", "env", "false", "groups", "hostid", "id",
    "install", "link", "ln", "logname", "ls", "mkdir", "mkfifo", "mknod",
    "mktemp", "mv", "nice", "nohup", "nproc", "pinky", "pr", "pwd",
    "readlink", "rm", "rmdir", "runcon", "shred", "sleep", "split", "stat",
    "stdbuf", "stty", "sync", "tee", "test", "timeout", "touch", "true",
    "tty", "uname", "unlink", "uptime", "users", "vdir", "who", "whoami",
)


# ---------------------------------------------------------------------------
# POSIX utility inventory (155 commands)
# ---------------------------------------------------------------------------

POSIX_STATELESS: Tuple[str, ...] = (
    "asa", "basename", "cat", "cut", "dirname", "echo", "egrep", "expand",
    "expr", "fgrep", "fold", "grep", "iconv", "join", "od", "paste",
    "printf", "sed", "seq", "strings", "tr", "unexpand", "uudecode",
    "uuencode", "xargs", "zcat", "col", "rev",
)

POSIX_PURE: Tuple[str, ...] = (
    "comm", "head", "nl", "pr", "sort", "tail", "tsort", "uniq", "wc",
)

POSIX_NON_PARALLELIZABLE: Tuple[str, ...] = (
    "cksum", "cmp", "csplit", "diff", "md5sum", "patch", "sha1sum", "sum",
    "dd", "ed", "ex", "pack", "compress",
)

POSIX_SIDE_EFFECTFUL: Tuple[str, ...] = (
    "admin", "alias", "ar", "at", "awk", "batch", "bc", "bg", "c99", "cal",
    "cd", "cflow", "chgrp", "chmod", "chown", "cp", "crontab", "ctags",
    "cxref", "date", "delta", "df", "du", "env", "eval", "exec", "exit",
    "export", "false", "fc", "fg", "file", "find", "fuser", "gencat", "get",
    "getconf", "getopts", "hash", "id", "ipcrm", "ipcs", "jobs", "kill",
    "lex", "link", "ln", "locale", "localedef", "logger", "logname", "lp",
    "ls", "m4", "mailx", "make", "man", "mesg", "mkdir", "mkfifo", "more",
    "mv", "newgrp", "nice", "nm", "nohup", "printenv", "prs", "ps", "pwd",
    "qstat", "qsub", "read", "renice", "rm", "rmdel", "rmdir",
    "sact", "sccs", "sh", "sleep", "split", "stty", "tabs", "talk", "tee",
    "time", "touch", "tput", "tty", "type", "ulimit", "umask", "unalias",
    "uname", "unget", "unlink", "uustat", "uux", "val", "vi", "wait",
    "what", "who", "write",
)


@dataclass
class CommandClassification:
    """Classification of one command within one suite."""

    command: str
    suite: str
    parallelizability: ParallelizabilityClass


class ParallelizabilityStudy:
    """Aggregated classification results for a set of command suites."""

    def __init__(self, classifications: Iterable[CommandClassification]) -> None:
        self.classifications: List[CommandClassification] = list(classifications)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_suites(
        cls, suites: Mapping[str, Mapping[ParallelizabilityClass, Iterable[str]]]
    ) -> "ParallelizabilityStudy":
        """Build a study from ``{suite: {class: [command, ...]}}``."""
        classifications = []
        for suite, by_class in suites.items():
            for parallelizability, commands in by_class.items():
                for command in commands:
                    classifications.append(
                        CommandClassification(command, suite, parallelizability)
                    )
        return cls(classifications)

    # -- queries --------------------------------------------------------------

    def suites(self) -> List[str]:
        """Suite names in first-appearance order."""
        seen: List[str] = []
        for classification in self.classifications:
            if classification.suite not in seen:
                seen.append(classification.suite)
        return seen

    def suite_size(self, suite: str) -> int:
        return sum(1 for c in self.classifications if c.suite == suite)

    def count(self, suite: str, parallelizability: ParallelizabilityClass) -> int:
        return sum(
            1
            for c in self.classifications
            if c.suite == suite and c.parallelizability == parallelizability
        )

    def percentage(self, suite: str, parallelizability: ParallelizabilityClass) -> float:
        size = self.suite_size(suite)
        if size == 0:
            return 0.0
        return 100.0 * self.count(suite, parallelizability) / size

    def counts(self, suite: str) -> Dict[ParallelizabilityClass, int]:
        return {cls_: self.count(suite, cls_) for cls_ in ParallelizabilityClass}

    def classify(self, command: str, suite: str) -> ParallelizabilityClass:
        for classification in self.classifications:
            if classification.command == command and classification.suite == suite:
                return classification.parallelizability
        raise KeyError(f"{command!r} is not part of suite {suite!r}")

    def commands_in_class(
        self, suite: str, parallelizability: ParallelizabilityClass
    ) -> List[str]:
        return sorted(
            c.command
            for c in self.classifications
            if c.suite == suite and c.parallelizability == parallelizability
        )

    # -- reporting -----------------------------------------------------------

    def table_rows(self) -> List[Dict[str, object]]:
        """Rows of Table 1: one per class, columns per suite."""
        rows = []
        labels = {
            S: "Stateless",
            P: "Parallelizable Pure",
            N: "Non-parallelizable Pure",
            E: "Side-effectful",
        }
        for parallelizability in (S, P, N, E):
            row: Dict[str, object] = {
                "class": labels[parallelizability],
                "symbol": parallelizability.symbol,
            }
            for suite in self.suites():
                row[suite] = self.count(suite, parallelizability)
                row[f"{suite}_pct"] = round(self.percentage(suite, parallelizability), 1)
            rows.append(row)
        return rows

    def format_table(self) -> str:
        """Render Table 1 as plain text."""
        rows = self.table_rows()
        suites = self.suites()
        header = ["Class".ljust(26)] + [suite.ljust(18) for suite in suites]
        lines = ["".join(header)]
        for row in rows:
            cells = [f"{row['class']} ({row['symbol']})".ljust(26)]
            for suite in suites:
                cells.append(f"{row[suite]} ({row[f'{suite}_pct']}%)".ljust(18))
            lines.append("".join(cells))
        return "\n".join(lines)


def standard_study() -> ParallelizabilityStudy:
    """The study over GNU Coreutils and POSIX used for Table 1."""
    return ParallelizabilityStudy.from_suites(
        {
            "coreutils": {
                S: COREUTILS_STATELESS,
                P: COREUTILS_PURE,
                N: COREUTILS_NON_PARALLELIZABLE,
                E: COREUTILS_SIDE_EFFECTFUL,
            },
            "posix": {
                S: POSIX_STATELESS,
                P: POSIX_PURE,
                N: POSIX_NON_PARALLELIZABLE,
                E: POSIX_SIDE_EFFECTFUL,
            },
        }
    )


#: Paper-reported counts for Table 1, used by tests and EXPERIMENTS.md.
PAPER_TABLE1_COUNTS = {
    ("coreutils", S): 22,
    ("coreutils", P): 8,
    ("coreutils", N): 13,
    ("coreutils", E): 57,
    ("posix", S): 28,
    ("posix", P): 9,
    ("posix", N): 13,
    ("posix", E): 105,
}
