"""Parser for the textual annotation language (Appendix A).

Example record::

    comm {
    | -1 /\\ -3 => (S, [args[1]], [stdout])
    | -2 /\\ -3 => (S, [args[0]], [stdout])
    | otherwise => (P, [args[0], args[1]], [stdout])
    }

Both the paper's ``/\\`` / ``\\/`` connectives and the keywords ``and`` /
``or`` / ``not`` are accepted; ``_`` is a synonym for ``otherwise``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.model import (
    And,
    AnnotationRecord,
    Assignment,
    Clause,
    IOSpec,
    NoOptions,
    Not,
    OptionPresent,
    OptionValueEquals,
    Or,
    Otherwise,
    Predicate,
)


class AnnotationParseError(ValueError):
    """Raised when an annotation record cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>=>)
  | (?P<and>/\\|\band\b)
  | (?P<or>\\/|\bor\b)
  | (?P<not>\bnot\b)
  | (?P<value>\bvalue\b)
  | (?P<otherwise>\botherwise\b|_)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<pipe>\|)
  | (?P<colon>:)
  | (?P<equals>=)
  | (?P<option>-[A-Za-z0-9][A-Za-z0-9-]*|--[A-Za-z0-9][A-Za-z0-9-]*)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<word>args?\[\d*:?\d*\]|[A-Za-z_][A-Za-z0-9_-]*|\d+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise AnnotationParseError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.index = 0

    def _peek(self) -> Tuple[str, str]:
        return self.tokens[self.index]

    def _advance(self) -> Tuple[str, str]:
        token = self.tokens[self.index]
        if token[0] != "eof":
            self.index += 1
        return token

    def _expect(self, kind: str) -> Tuple[str, str]:
        token = self._peek()
        if token[0] != kind:
            raise AnnotationParseError(f"expected {kind}, found {token[1]!r}")
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse_command_list(self) -> List[AnnotationRecord]:
        records = []
        while self._peek()[0] != "eof":
            records.append(self.parse_command())
        return records

    def parse_command(self) -> AnnotationRecord:
        name_token = self._expect("word")
        self._expect("lbrace")
        clauses: List[Clause] = []
        while self._peek()[0] == "pipe":
            self._advance()
            clauses.append(self.parse_predicate_clause())
        self._expect("rbrace")
        if not clauses:
            raise AnnotationParseError(f"record for {name_token[1]!r} has no clauses")
        return AnnotationRecord(name_token[1], clauses)

    def parse_predicate_clause(self) -> Clause:
        predicate = self.parse_option_pred()
        self._expect("arrow")
        assignment = self.parse_assignment()
        return Clause(predicate, assignment)

    def parse_option_pred(self) -> Predicate:
        left = self.parse_option_conjunct()
        while self._peek()[0] == "or":
            self._advance()
            right = self.parse_option_conjunct()
            left = Or(left, right)
        return left

    def parse_option_conjunct(self) -> Predicate:
        left = self.parse_option_atom()
        while self._peek()[0] == "and":
            self._advance()
            right = self.parse_option_atom()
            left = And(left, right)
        return left

    def parse_option_atom(self) -> Predicate:
        kind, text = self._peek()
        if kind == "not":
            self._advance()
            return Not(self.parse_option_atom())
        if kind == "otherwise":
            self._advance()
            return Otherwise()
        if kind == "value":
            self._advance()
            option = self._expect("option")[1]
            self._expect("equals")
            value_kind, value_text = self._advance()
            if value_kind == "string":
                value_text = value_text[1:-1]
            return OptionValueEquals(option, value_text)
        if kind == "option":
            self._advance()
            return OptionPresent(text)
        if kind == "word" and text == "no_options":
            self._advance()
            return NoOptions()
        if kind == "lparen":
            self._advance()
            inner = self.parse_option_pred()
            self._expect("rparen")
            return inner
        raise AnnotationParseError(f"expected an option predicate, found {text!r}")

    def parse_assignment(self) -> Assignment:
        self._expect("lparen")
        category_token = self._advance()
        category = ParallelizabilityClass.from_keyword(category_token[1])
        self._expect("comma")
        inputs = self.parse_io_list()
        self._expect("comma")
        outputs = self.parse_io_list()
        self._expect("rparen")
        return Assignment(category, inputs, outputs)

    def parse_io_list(self) -> List[IOSpec]:
        self._expect("lbracket")
        specs: List[IOSpec] = []
        while self._peek()[0] != "rbracket":
            specs.append(self.parse_io())
            if self._peek()[0] == "comma":
                self._advance()
        self._expect("rbracket")
        return specs

    def parse_io(self) -> IOSpec:
        kind, text = self._advance()
        if kind != "word":
            raise AnnotationParseError(f"expected an input/output, found {text!r}")
        return parse_io_spec(text)


_ARG_RE = re.compile(r"^args?\[(\d*)(:?)(\d*)\]$")


def parse_io_spec(text: str) -> IOSpec:
    """Parse a single IO spec such as ``stdin``, ``stdout`` or ``args[1:]``."""
    if text == "stdin":
        return IOSpec.stdin()
    if text == "stdout":
        return IOSpec.stdout()
    match = _ARG_RE.match(text)
    if not match:
        raise AnnotationParseError(f"cannot parse io spec {text!r}")
    first, colon, second = match.groups()
    if not colon:
        if first == "":
            raise AnnotationParseError(f"missing index in {text!r}")
        return IOSpec.arg(int(first))
    start = int(first) if first else None
    end = int(second) if second else None
    return IOSpec.args_slice(start, end)


def parse_annotation(text: str) -> AnnotationRecord:
    """Parse a single annotation record."""
    records = parse_annotations(text)
    if len(records) != 1:
        raise AnnotationParseError(f"expected one record, found {len(records)}")
    return records[0]


def parse_annotations(text: str) -> List[AnnotationRecord]:
    """Parse a list of annotation records."""
    return _Parser(_tokenize(text)).parse_command_list()


def render_annotation(record: AnnotationRecord) -> str:
    """Render a record back to the DSL (used for documentation and tests)."""
    lines = [f"{record.command} {{"]
    for clause in record.clauses:
        predicate = _render_predicate(clause.predicate)
        inputs = ", ".join(str(spec) for spec in clause.assignment.inputs)
        outputs = ", ".join(str(spec) for spec in clause.assignment.outputs)
        symbol = clause.assignment.parallelizability.symbol
        lines.append(f"| {predicate} => ({symbol}, [{inputs}], [{outputs}])")
    lines.append("}")
    return "\n".join(lines)


def _render_predicate(predicate: Predicate) -> str:
    if isinstance(predicate, Otherwise):
        return "otherwise"
    if isinstance(predicate, NoOptions):
        return "no_options"
    if isinstance(predicate, OptionPresent):
        return predicate.flag
    if isinstance(predicate, OptionValueEquals):
        return f'value {predicate.flag} = "{predicate.value}"'
    if isinstance(predicate, Not):
        return f"not {_render_predicate(predicate.inner)}"
    if isinstance(predicate, And):
        return f"{_render_predicate(predicate.left)} and {_render_predicate(predicate.right)}"
    if isinstance(predicate, Or):
        return f"{_render_predicate(predicate.left)} or {_render_predicate(predicate.right)}"
    raise AnnotationParseError(f"cannot render predicate {predicate!r}")


def load_annotation_map(text: str) -> Dict[str, AnnotationRecord]:
    """Parse a command list and index the records by command name."""
    return {record.command: record for record in parse_annotations(text)}
