"""Annotation records: how a command's flags determine its parallelizability.

An :class:`AnnotationRecord` holds an ordered list of :class:`Clause` objects.
Each clause has a predicate over the command's options and, when the predicate
matches, an assignment ``(class, inputs, outputs)``.  The first matching
clause wins; a final ``otherwise`` clause provides the default (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.annotations.classes import ParallelizabilityClass


# ---------------------------------------------------------------------------
# Invocations
# ---------------------------------------------------------------------------


@dataclass
class CommandInvocation:
    """A concrete command invocation: name plus expanded arguments.

    Arguments are split into *options* (tokens starting with ``-``) and
    *operands* (everything else), matching how the annotation language treats
    flag arguments differently from file arguments.  ``value_flags`` lists the
    options that consume the following argument (``head -n 10``), so that
    value is not mistaken for a file operand.
    """

    name: str
    arguments: List[str] = field(default_factory=list)
    value_flags: Tuple[str, ...] = ()

    @property
    def options(self) -> List[str]:
        """Arguments that look like flags."""
        return [arg for arg in self.arguments if arg.startswith("-") and arg != "-"]

    @property
    def operands(self) -> List[str]:
        """Non-flag arguments (files, patterns, etc.), excluding flag values."""
        operands: List[str] = []
        skip_next = False
        for argument in self.arguments:
            if skip_next:
                skip_next = False
                continue
            if argument.startswith("-") and argument != "-":
                if argument in self.value_flags:
                    skip_next = True
                continue
            operands.append(argument)
        return operands

    def has_option(self, flag: str) -> bool:
        """True when ``flag`` appears, including inside combined short flags."""
        if flag in self.options:
            return True
        if len(flag) == 2 and flag.startswith("-") and not flag.startswith("--"):
            letter = flag[1]
            for option in self.options:
                if option.startswith("--"):
                    continue
                if letter in option[1:]:
                    return True
        return False

    def option_value(self, flag: str) -> Optional[str]:
        """Return the value following ``flag`` (``-f value`` or ``--f=value``)."""
        for index, arg in enumerate(self.arguments):
            if arg == flag:
                if index + 1 < len(self.arguments):
                    return self.arguments[index + 1]
                return None
            if arg.startswith(flag + "="):
                return arg[len(flag) + 1 :]
        return None


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class for option predicates."""

    def matches(self, invocation: CommandInvocation) -> bool:
        raise NotImplementedError


@dataclass
class OptionPresent(Predicate):
    """Matches when a flag is present in the invocation."""

    flag: str

    def matches(self, invocation: CommandInvocation) -> bool:
        return invocation.has_option(self.flag)


@dataclass
class OptionValueEquals(Predicate):
    """Matches when a flag has a specific value (``value -d =`` form)."""

    flag: str
    value: str

    def matches(self, invocation: CommandInvocation) -> bool:
        return invocation.option_value(self.flag) == self.value


@dataclass
class Not(Predicate):
    """Negation of another predicate."""

    inner: Predicate

    def matches(self, invocation: CommandInvocation) -> bool:
        return not self.inner.matches(invocation)


@dataclass
class And(Predicate):
    """Conjunction of predicates."""

    left: Predicate
    right: Predicate

    def matches(self, invocation: CommandInvocation) -> bool:
        return self.left.matches(invocation) and self.right.matches(invocation)


@dataclass
class Or(Predicate):
    """Disjunction of predicates."""

    left: Predicate
    right: Predicate

    def matches(self, invocation: CommandInvocation) -> bool:
        return self.left.matches(invocation) or self.right.matches(invocation)


@dataclass
class Otherwise(Predicate):
    """The catch-all predicate; always matches."""

    def matches(self, invocation: CommandInvocation) -> bool:
        return True


@dataclass
class NoOptions(Predicate):
    """Matches when the invocation carries no options at all."""

    def matches(self, invocation: CommandInvocation) -> bool:
        return not invocation.options


# ---------------------------------------------------------------------------
# Input/output specifications
# ---------------------------------------------------------------------------


@dataclass
class IOSpec:
    """A symbolic reference to one of a command's inputs or outputs.

    ``kind`` is one of ``stdin``, ``stdout``, ``arg`` (single operand index),
    or ``args`` (an operand slice).  Indices refer to *operands*, i.e. the
    non-flag arguments, mirroring the paper's ``args[i]`` notation.
    """

    kind: str
    index: Optional[int] = None
    start: Optional[int] = None
    end: Optional[int] = None

    STDIN = None  # type: ignore[assignment]
    STDOUT = None  # type: ignore[assignment]

    @classmethod
    def stdin(cls) -> "IOSpec":
        return cls("stdin")

    @classmethod
    def stdout(cls) -> "IOSpec":
        return cls("stdout")

    @classmethod
    def arg(cls, index: int) -> "IOSpec":
        return cls("arg", index=index)

    @classmethod
    def args_slice(cls, start: Optional[int] = None, end: Optional[int] = None) -> "IOSpec":
        return cls("args", start=start, end=end)

    def resolve(self, invocation: CommandInvocation) -> List[str]:
        """Resolve the spec against an invocation's operands.

        ``stdin``/``stdout`` resolve to the symbolic names ``"stdin"`` and
        ``"stdout"``; argument references resolve to the operand strings.
        """
        if self.kind == "stdin":
            return ["stdin"]
        if self.kind == "stdout":
            return ["stdout"]
        operands = invocation.operands
        if self.kind == "arg":
            assert self.index is not None
            if self.index < len(operands):
                return [operands[self.index]]
            return []
        if self.kind == "args":
            return operands[self.start : self.end]
        raise ValueError(f"unknown IOSpec kind {self.kind!r}")

    def __str__(self) -> str:
        if self.kind == "stdin":
            return "stdin"
        if self.kind == "stdout":
            return "stdout"
        if self.kind == "arg":
            return f"args[{self.index}]"
        start = "" if self.start is None else str(self.start)
        end = "" if self.end is None else str(self.end)
        return f"args[{start}:{end}]"


IOSpec.STDIN = IOSpec.stdin()
IOSpec.STDOUT = IOSpec.stdout()


# ---------------------------------------------------------------------------
# Clauses and records
# ---------------------------------------------------------------------------


@dataclass
class Assignment:
    """The result of a matching clause."""

    parallelizability: ParallelizabilityClass
    inputs: List[IOSpec] = field(default_factory=lambda: [IOSpec.stdin()])
    outputs: List[IOSpec] = field(default_factory=lambda: [IOSpec.stdout()])


@dataclass
class Clause:
    """One guarded assignment of an annotation record."""

    predicate: Predicate
    assignment: Assignment


@dataclass
class AnnotationRecord:
    """The complete annotation of one command."""

    command: str
    clauses: List[Clause] = field(default_factory=list)
    #: Optional name of the aggregator used to merge partial outputs when the
    #: command is parallelized in the pure class (e.g. ``sort`` -> ``merge_sort``).
    aggregator: Optional[str] = None
    #: Optional name of a map-stage replacement command (defaults to the
    #: command itself, i.e. the command is its own map function).
    map_command: Optional[str] = None
    #: Operand indices that are *configuration* inputs replicated to every
    #: parallel copy instead of being split (e.g. grep's pattern argument).
    configuration_operands: Tuple[int, ...] = ()
    #: Options that consume the following argument as their value
    #: (``head -n 10``); used to keep flag values out of the operand list.
    value_flags: Tuple[str, ...] = ()

    def invocation(self, name: str, arguments) -> CommandInvocation:
        """Build an invocation that knows about this record's value flags."""
        return CommandInvocation(name, list(arguments), value_flags=self.value_flags)

    def classify(self, invocation: CommandInvocation) -> Assignment:
        """Return the assignment of the first clause matching ``invocation``."""
        for clause in self.clauses:
            if clause.predicate.matches(invocation):
                return clause.assignment
        # Without a matching clause, be conservative.
        return Assignment(ParallelizabilityClass.SIDE_EFFECTFUL, [], [])

    def parallelizability(self, invocation: CommandInvocation) -> ParallelizabilityClass:
        """Shortcut returning only the class for ``invocation``."""
        return self.classify(invocation).parallelizability


def classify_invocation(
    record: Optional[AnnotationRecord], invocation: CommandInvocation
) -> ParallelizabilityClass:
    """Classify an invocation, defaulting to side-effectful when unannotated.

    This is the conservative default of §5.1: commands with no annotation are
    never parallelized.
    """
    if record is None:
        return ParallelizabilityClass.SIDE_EFFECTFUL
    return record.parallelizability(invocation)


def simple_record(
    command: str,
    parallelizability: ParallelizabilityClass,
    inputs: Optional[Sequence[IOSpec]] = None,
    outputs: Optional[Sequence[IOSpec]] = None,
    aggregator: Optional[str] = None,
    configuration_operands: Tuple[int, ...] = (),
) -> AnnotationRecord:
    """Build a record with a single ``otherwise`` clause."""
    assignment = Assignment(
        parallelizability,
        list(inputs) if inputs is not None else [IOSpec.stdin()],
        list(outputs) if outputs is not None else [IOSpec.stdout()],
    )
    return AnnotationRecord(
        command,
        [Clause(Otherwise(), assignment)],
        aggregator=aggregator,
        configuration_operands=configuration_operands,
    )
