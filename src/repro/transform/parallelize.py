"""The node-parallelization transformation T (§4.2).

Given a node ``v`` in the stateless or parallelizable-pure class whose single
data input is produced by a concatenation of ``n`` streams, T replaces ``v``
with ``n`` copies — one per stream — and commutes the concatenation after
them.  For stateless nodes the combined output is a plain concatenation; for
pure nodes it is the command's aggregator (e.g. ``sort -m``), arranged as a
binary merge tree.
"""

from __future__ import annotations

from typing import List, Optional

from repro.annotations.classes import ParallelizabilityClass
from repro.dfg.edges import EdgeKind
from repro.dfg.graph import DataflowGraph, GraphError
from repro.dfg.nodes import AggregatorNode, CatNode, CommandNode, DFGNode


#: Default aggregator used for pure commands that did not declare one.
DEFAULT_AGGREGATOR = "concat"


def is_parallelizable_node(node: DFGNode) -> bool:
    """True for command nodes in the stateless or parallelizable-pure class."""
    if not isinstance(node, CommandNode):
        return False
    return node.parallelizability().is_data_parallelizable


def preceding_concatenation(graph: DataflowGraph, node: CommandNode) -> Optional[DFGNode]:
    """Return the concatenation node feeding ``node``'s single data input.

    A concatenation is either an inserted :class:`CatNode` or a plain ``cat``
    command without flags.  Returns None when the input is not produced by a
    concatenation of two or more streams.
    """
    data_inputs = node.data_inputs
    if len(data_inputs) != 1:
        return None
    edge = graph.edge(data_inputs[0])
    if edge.source is None:
        return None
    producer = graph.node(edge.source)
    if isinstance(producer, CatNode) and len(producer.inputs) >= 2:
        return producer
    if (
        isinstance(producer, CommandNode)
        and producer.name == "cat"
        and not producer.arguments
        and len(producer.data_inputs) >= 2
        and not producer.config_inputs
    ):
        return producer
    return None


def parallelize_node(
    graph: DataflowGraph,
    node: CommandNode,
    concatenation: Optional[DFGNode] = None,
    fan_in: int = 2,
    max_copies: Optional[int] = None,
) -> List[CommandNode]:
    """Apply T to ``node``; returns the parallel copies (empty when skipped).

    ``concatenation`` must be the node returned by
    :func:`preceding_concatenation`; when omitted it is recomputed.  ``fan_in``
    controls the shape of the pure-command aggregation tree (2 = binary tree,
    larger values make flatter trees; ``0`` or a value >= the copy count makes
    a single flat aggregator).  ``max_copies`` caps the parallelism width:
    when the concatenation joins more streams than that, consecutive streams
    are grouped with small ``cat`` nodes first.
    """
    if not is_parallelizable_node(node):
        return []
    if concatenation is None:
        concatenation = preceding_concatenation(graph, node)
    if concatenation is None:
        return []

    input_edges = [graph.edge(edge_id) for edge_id in list(concatenation.inputs)]
    if len(input_edges) < 2:
        return []
    if max_copies is not None and max_copies >= 2 and len(input_edges) > max_copies:
        input_edges = _group_streams(graph, concatenation, input_edges, max_copies)

    output_edge_id = node.outputs[0] if node.outputs else None
    config_edges = [graph.edge(edge_id) for edge_id in node.config_inputs]

    # Detach the concatenation and the edge joining it to the node.
    joining_edge_id = node.data_inputs[0]
    graph.remove_edge(joining_edge_id)
    graph.remove_node(concatenation.node_id)

    # Create one copy of the node per incoming stream.
    copies: List[CommandNode] = []
    for edge in input_edges:
        copy = CommandNode(
            name=node.name,
            arguments=list(node.arguments),
            parallelizability_class=node.parallelizability_class,
            aggregator=node.aggregator,
            parallelized_copy=True,
        )
        graph.add_node(copy)
        edge.target = copy.node_id
        copy.inputs.append(edge.edge_id)
        for config_edge in config_edges:
            replica = graph.add_edge(kind=config_edge.kind, name=config_edge.name)
            graph.attach_input(copy, replica, configuration=True)
        copies.append(copy)

    # Build the combiner: a flat concatenation for stateless nodes, an
    # aggregation tree for pure nodes.
    copy_output_edges = []
    for copy in copies:
        edge = graph.add_edge(kind=EdgeKind.PIPE, source=copy.node_id)
        copy.outputs.append(edge.edge_id)
        copy_output_edges.append(edge)

    if node.parallelizability_class is ParallelizabilityClass.STATELESS:
        combiner = CatNode()
        graph.add_node(combiner)
        for edge in copy_output_edges:
            edge.target = combiner.node_id
            combiner.inputs.append(edge.edge_id)
        final_node: DFGNode = combiner
    else:
        final_node = _build_aggregation_tree(graph, node, copy_output_edges, fan_in)

    # Re-route the original output edge to come from the combiner.
    if output_edge_id is not None:
        output_edge = graph.edge(output_edge_id)
        output_edge.source = final_node.node_id
        final_node.outputs.append(output_edge_id)

    # Drop the original node and its configuration edges.
    for edge in config_edges:
        if edge.edge_id in graph.edges:
            graph.remove_edge(edge.edge_id)
    node.outputs = []
    graph.remove_node(node.node_id)
    return copies


def _group_streams(
    graph: DataflowGraph,
    concatenation: DFGNode,
    input_edges,
    max_copies: int,
):
    """Group the concatenation's inputs into at most ``max_copies`` streams.

    Consecutive streams are combined with small ``cat`` nodes so the copy
    count matches the requested parallelism width; order is preserved, which
    keeps the transformation semantics-preserving.
    """
    groups: List[List] = [[] for _ in range(max_copies)]
    base, remainder = divmod(len(input_edges), max_copies)
    index = 0
    for group_number in range(max_copies):
        size = base + (1 if group_number < remainder else 0)
        groups[group_number] = input_edges[index : index + size]
        index += size

    grouped_edges = []
    for group in groups:
        if not group:
            continue
        if len(group) == 1:
            grouped_edges.append(group[0])
            continue
        cat_node = CatNode()
        graph.add_node(cat_node)
        for edge in group:
            # Re-target the edge from the original concatenation to the group cat.
            edge.target = cat_node.node_id
            cat_node.inputs.append(edge.edge_id)
            concatenation.inputs = [e for e in concatenation.inputs if e != edge.edge_id]
        joining = graph.add_edge(kind=EdgeKind.PIPE, source=cat_node.node_id, target=concatenation.node_id)
        cat_node.outputs.append(joining.edge_id)
        concatenation.inputs.append(joining.edge_id)
        grouped_edges.append(joining)
    return grouped_edges


def _build_aggregation_tree(
    graph: DataflowGraph,
    node: CommandNode,
    stream_edges,
    fan_in: int,
) -> DFGNode:
    """Build a tree of aggregator nodes merging ``stream_edges``."""
    aggregator_name = node.aggregator or DEFAULT_AGGREGATOR
    level = reduce_stream_edges(
        graph, aggregator_name, node.name, node.arguments, list(stream_edges), fan_in
    )
    # The root consumes whatever remains (all streams when fan_in <= 1 or
    # already within the fan-in); the caller re-routes the real output to it.
    return make_aggregator(graph, aggregator_name, node.name, node.arguments, level)


def reduce_stream_edges(
    graph: DataflowGraph,
    aggregator_name: str,
    command_name: str,
    command_arguments,
    edges,
    fan_in: int,
):
    """Merge ``edges`` level-by-level until at most ``fan_in`` remain.

    Each level groups consecutive streams (order-preserving) into aggregators
    of the given fan-in, single leftovers passing through; the shared
    tree-shaping used both when lowering inline (``parallelize_node`` with
    ``fan_in``) and by the ``aggregation-lowering`` pass.  Returns the edges
    of the final level, each an unconsumed aggregator (or original) output.
    """
    level = list(edges)
    if fan_in <= 1:
        # 0/1 mean "no tree": grouping by <=1 could never shrink the level
        # (an infinite loop), so a flat merge is the only sensible reading.
        return level
    while len(level) > fan_in:
        next_level = []
        for start in range(0, len(level), fan_in):
            group = level[start : start + fan_in]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            aggregator = make_aggregator(
                graph, aggregator_name, command_name, command_arguments, group
            )
            out_edge = graph.add_edge(kind=EdgeKind.PIPE, source=aggregator.node_id)
            aggregator.outputs.append(out_edge.edge_id)
            next_level.append(out_edge)
        level = next_level
    return level


def make_aggregator(
    graph: DataflowGraph,
    aggregator_name: str,
    command_name: str,
    command_arguments,
    edges,
) -> AggregatorNode:
    """Create one aggregator node consuming ``edges`` (which must be free)."""
    aggregator = AggregatorNode(
        aggregator=aggregator_name,
        command_name=command_name,
        command_arguments=list(command_arguments),
    )
    graph.add_node(aggregator)
    for edge in edges:
        if edge.target is not None:
            raise GraphError(f"edge {edge.edge_id} already consumed")
        edge.target = aggregator.node_id
        aggregator.inputs.append(edge.edge_id)
    return aggregator
