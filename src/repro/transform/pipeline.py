"""Optimization knobs and the legacy single-call driver.

:class:`ParallelizationConfig` names the §4.2 knobs matching the
configurations evaluated in Fig. 7:

* ``Par + Split`` — eager relays and the general (counting) split,
* ``Par + B.Split`` — eager relays and the input-aware (blocking-free) split,
* ``Parallel`` — eager relays, no split (only existing concatenations are
  commuted),
* ``Blocking Eager`` — relays that buffer but only in blocking mode,
* ``No Eager`` — neither relays nor split.

The transformations themselves live in :mod:`repro.transform.passes` as an
ordered pipeline of named passes; :func:`optimize_graph` is kept as the
one-call wrapper that runs the default pipeline.  New code should prefer the
``repro.api`` front door (``Pash.compile`` / ``repro.api.optimize``), which
also exposes per-pass toggling.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.dfg.graph import DataflowGraph


class EagerMode(enum.Enum):
    """How relay nodes buffer data."""

    NONE = "none"
    BLOCKING = "blocking"
    EAGER = "eager"


class SplitMode(enum.Enum):
    """Which split implementation (if any) is inserted by transformation t2."""

    NONE = "none"
    GENERAL = "general"
    INPUT_AWARE = "input-aware"


@dataclass
class ParallelizationConfig:
    """Knobs controlling the optimization passes."""

    width: int = 2
    eager: EagerMode = EagerMode.EAGER
    split: SplitMode = SplitMode.GENERAL
    #: Fan-in of the aggregation tree for pure commands (2 = binary tree).
    aggregation_fan_in: int = 2
    #: Never parallelize commands whose estimated benefit is below this many
    #: input streams (kept at 2: a single stream cannot be parallelized
    #: without split).
    minimum_copies: int = 2
    #: Collapse linear stateless chains into single-worker fused stages
    #: (the ``fuse-stages`` pass).  Off by default in this *legacy* config so
    #: that paper-faithful graph shapes (Table 2 process counts, simulated
    #: figures) are reproduced unchanged; the ``repro.api.PashConfig`` front
    #: door defaults it on for the execution engine's hot path.
    fuse_stages: bool = False
    #: Cores the target backend can keep busy, or ``None`` for "trust the
    #: width".  When set, the parallelize/split passes clamp the effective
    #: width to it (``PashConfig.adaptive_width`` feeds it): CPU-bound stages
    #: gain nothing from more copies than cores, they only pay splitting and
    #: aggregation overhead.
    available_cores: Optional[int] = None

    @classmethod
    def paper_default(cls, width: int) -> "ParallelizationConfig":
        """The `Par + Split` configuration used for the headline results."""
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.GENERAL)

    @classmethod
    def no_eager(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.NONE, split=SplitMode.NONE)

    @classmethod
    def blocking_eager(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.BLOCKING, split=SplitMode.NONE)

    @classmethod
    def parallel_only(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.NONE)

    @classmethod
    def blocking_split(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.INPUT_AWARE)


def effective_width(config: ParallelizationConfig) -> int:
    """The width the passes actually fan out to.

    The configured width, clamped to ``available_cores`` when the config
    carries a core budget (never below 1).
    """
    if config.available_cores is None:
        return config.width
    return max(1, min(config.width, config.available_cores))


@dataclass
class OptimizationReport:
    """What the optimizer did to one graph."""

    parallelized_commands: List[str] = field(default_factory=list)
    skipped_commands: List[str] = field(default_factory=list)
    inserted_splits: int = 0
    inserted_relays: int = 0
    #: Number of stateless chains collapsed by the ``fuse-stages`` pass.
    fused_stages: int = 0
    compile_time_seconds: float = 0.0
    #: Wall time spent in each pass, in pipeline order (pass name -> seconds).
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    #: Freeform annotations for registered (non-default) passes to leave
    #: their findings in (see docs/PASSES.md).
    notes: str = ""

    @property
    def parallelized_count(self) -> int:
        return len(self.parallelized_commands)

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON schema: the dataclass fields plus ``parallelized_count``."""
        payload: Dict[str, Any] = {
            report_field.name: getattr(self, report_field.name)
            for report_field in dataclasses.fields(self)
        }
        payload["parallelized_commands"] = list(self.parallelized_commands)
        payload["skipped_commands"] = list(self.skipped_commands)
        payload["pass_seconds"] = dict(self.pass_seconds)
        payload["parallelized_count"] = self.parallelized_count
        return payload


def optimize_graph(
    graph: DataflowGraph,
    config: Optional[ParallelizationConfig] = None,
) -> OptimizationReport:
    """Apply the parallelization and auxiliary transformations in place.

    Runs the default pass pipeline (see :mod:`repro.transform.passes`).  The
    ``repro.api`` front door is the preferred entry point; this wrapper stays
    for callers that already hold a single translated graph.
    """
    from repro.transform.passes import build_pipeline  # deferred: cyclic module

    return build_pipeline().run(graph, config or ParallelizationConfig())


def relevant_configurations(width: int) -> dict:
    """The named configurations plotted in Fig. 7 for a given width.

    Delegates to :meth:`repro.api.PashConfig.named_configurations` — the
    single source of truth for the Fig. 7 ablation names — projected down to
    the optimizer's view.
    """
    from repro.api.config import PashConfig  # deferred: cyclic module

    # The Fig. 7 ablations model the paper's one-process-per-node runtime, so
    # the simulator-facing projection pins our post-paper stage fusion off.
    return {
        name: config.replace(fuse_stages=False).parallelization()
        for name, config in PashConfig.named_configurations(width).items()
    }
