"""The optimization pass driver.

``optimize_graph`` applies the §4.2 transformations to a DFG under a
:class:`ParallelizationConfig`, matching the configurations evaluated in
Fig. 7:

* ``Par + Split`` — eager relays and the general (counting) split,
* ``Par + B.Split`` — eager relays and the input-aware (blocking-free) split,
* ``Parallel`` — eager relays, no split (only existing concatenations are
  commuted),
* ``Blocking Eager`` — relays that buffer but only in blocking mode,
* ``No Eager`` — neither relays nor split.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.annotations.classes import ParallelizabilityClass
from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import CommandNode
from repro.transform.auxiliary import (
    insert_cat_for_multi_input,
    insert_eager_relays,
    insert_split_before,
)
from repro.transform.parallelize import (
    is_parallelizable_node,
    parallelize_node,
    preceding_concatenation,
)


class EagerMode(enum.Enum):
    """How relay nodes buffer data."""

    NONE = "none"
    BLOCKING = "blocking"
    EAGER = "eager"


class SplitMode(enum.Enum):
    """Which split implementation (if any) is inserted by transformation t2."""

    NONE = "none"
    GENERAL = "general"
    INPUT_AWARE = "input-aware"


@dataclass
class ParallelizationConfig:
    """Knobs controlling the optimization passes."""

    width: int = 2
    eager: EagerMode = EagerMode.EAGER
    split: SplitMode = SplitMode.GENERAL
    #: Fan-in of the aggregation tree for pure commands (2 = binary tree).
    aggregation_fan_in: int = 2
    #: Never parallelize commands whose estimated benefit is below this many
    #: input streams (kept at 2: a single stream cannot be parallelized
    #: without split).
    minimum_copies: int = 2

    @classmethod
    def paper_default(cls, width: int) -> "ParallelizationConfig":
        """The `Par + Split` configuration used for the headline results."""
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.GENERAL)

    @classmethod
    def no_eager(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.NONE, split=SplitMode.NONE)

    @classmethod
    def blocking_eager(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.BLOCKING, split=SplitMode.NONE)

    @classmethod
    def parallel_only(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.NONE)

    @classmethod
    def blocking_split(cls, width: int) -> "ParallelizationConfig":
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.INPUT_AWARE)


@dataclass
class OptimizationReport:
    """What the optimizer did to one graph."""

    parallelized_commands: List[str] = field(default_factory=list)
    skipped_commands: List[str] = field(default_factory=list)
    inserted_splits: int = 0
    inserted_relays: int = 0
    compile_time_seconds: float = 0.0

    @property
    def parallelized_count(self) -> int:
        return len(self.parallelized_commands)


def optimize_graph(
    graph: DataflowGraph,
    config: Optional[ParallelizationConfig] = None,
) -> OptimizationReport:
    """Apply the parallelization and auxiliary transformations in place."""
    config = config or ParallelizationConfig()
    report = OptimizationReport()
    started = time.perf_counter()

    if config.width >= 2:
        _parallelize_commands(graph, config, report)

    if config.eager is not EagerMode.NONE:
        relays = insert_eager_relays(
            graph,
            eager=config.eager is EagerMode.EAGER,
            blocking=config.eager is EagerMode.BLOCKING,
        )
        report.inserted_relays = len(relays)

    graph.validate()
    report.compile_time_seconds = time.perf_counter() - started
    return report


def _parallelize_commands(
    graph: DataflowGraph, config: ParallelizationConfig, report: OptimizationReport
) -> None:
    """Repeatedly apply t1/t2/T until no more commands can be parallelized."""
    progress = True
    while progress:
        progress = False
        for node in list(graph.topological_order()):
            if node.node_id not in graph.nodes:
                continue
            if not is_parallelizable_node(node):
                continue
            assert isinstance(node, CommandNode)
            if node.parallelized_copy:
                continue
            if _uses_positional_offset(node):
                # head/tail invocations such as `tail -n +2` select lines by
                # absolute position; splitting their input would change which
                # lines are skipped, so they stay sequential.
                continue
            if _is_trivial_concatenation(graph, node):
                # A bare `cat` feeding a parallelizable consumer is commuted by
                # the consumer's transformation; parallelizing it on its own
                # only adds processes.
                continue

            concatenation = preceding_concatenation(graph, node)
            if concatenation is None and len(node.data_inputs) >= 2:
                concatenation = insert_cat_for_multi_input(graph, node)
            if concatenation is None and config.split is not SplitMode.NONE:
                if len(node.data_inputs) == 1:
                    concatenation = insert_split_before(
                        graph, node, config.width, strategy=config.split.value
                    )
                    if concatenation is not None:
                        report.inserted_splits += 1
            if concatenation is None:
                if node.label() not in report.skipped_commands:
                    report.skipped_commands.append(node.label())
                continue

            copies = parallelize_node(
                graph,
                node,
                concatenation,
                fan_in=config.aggregation_fan_in,
                max_copies=config.width,
            )
            if copies:
                report.parallelized_commands.append(node.label())
                progress = True
                break  # Topological order changed; restart the scan.


def _uses_positional_offset(node: CommandNode) -> bool:
    """True for head/tail invocations addressing absolute line positions."""
    if node.name not in ("head", "tail"):
        return False
    return any(argument.lstrip("-n") .startswith("+") for argument in node.arguments) or any(
        argument.startswith("+") for argument in node.arguments
    )


def _is_trivial_concatenation(graph: DataflowGraph, node: CommandNode) -> bool:
    """True for a flag-less ``cat`` whose consumer is itself parallelizable."""
    if node.name != "cat" or node.arguments:
        return False
    successors = graph.successors(node)
    if len(successors) != 1:
        # cat writing to the graph output: parallelizing it cannot help.
        return len(node.data_inputs) >= 1
    consumer = successors[0]
    return is_parallelizable_node(consumer) or not isinstance(consumer, CommandNode)


def relevant_configurations(width: int) -> dict:
    """The named configurations plotted in Fig. 7 for a given width."""
    return {
        "Par + Split": ParallelizationConfig.paper_default(width),
        "Par + B. Split": ParallelizationConfig.blocking_split(width),
        "Parallel": ParallelizationConfig.parallel_only(width),
        "Blocking Eager": ParallelizationConfig.blocking_eager(width),
        "No Eager": ParallelizationConfig.no_eager(width),
    }
