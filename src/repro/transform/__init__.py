"""Semantics-preserving DFG transformations (§4.2) and the pass driver."""

from repro.transform.auxiliary import (
    insert_cat_for_multi_input,
    insert_eager_relays,
    insert_relay,
    insert_split_before,
)
from repro.transform.parallelize import (
    is_parallelizable_node,
    parallelize_node,
    preceding_concatenation,
)
from repro.transform.passes import (
    AggregationLoweringPass,
    EagerRelayPass,
    GraphPass,
    ParallelizePass,
    PassContext,
    PassManager,
    SplitInsertionPass,
    available_passes,
    build_pipeline,
    register_pass,
    unregister_pass,
)
from repro.transform.pipeline import (
    EagerMode,
    OptimizationReport,
    ParallelizationConfig,
    SplitMode,
    optimize_graph,
    relevant_configurations,
)

__all__ = [
    "AggregationLoweringPass",
    "EagerMode",
    "EagerRelayPass",
    "GraphPass",
    "OptimizationReport",
    "ParallelizationConfig",
    "ParallelizePass",
    "PassContext",
    "PassManager",
    "SplitInsertionPass",
    "SplitMode",
    "available_passes",
    "build_pipeline",
    "insert_cat_for_multi_input",
    "insert_eager_relays",
    "insert_relay",
    "insert_split_before",
    "is_parallelizable_node",
    "optimize_graph",
    "parallelize_node",
    "register_pass",
    "relevant_configurations",
    "preceding_concatenation",
    "unregister_pass",
]
