"""The optimization pass manager: named, ordered, individually-toggleable passes.

The monolithic ``optimize_graph`` body is decomposed into four named
:class:`GraphPass` objects that run in a fixed order over one
:class:`~repro.dfg.graph.DataflowGraph`:

1. ``split-insertion`` — contributes the t2 rule (§4.2).  Split insertion is
   *demand-driven*: a split only pays off at the moment the parallelization
   transformation needs a concatenation in front of a single-input node, so
   this pass installs the rule into the :class:`PassContext` rather than
   mutating the graph up front.  Disabling it by name is exactly
   ``SplitMode.NONE``.
2. ``parallelize`` — the node-parallelization transformation T plus the t1
   ``cat``-insertion, applied to a fixpoint.  Pure commands are combined with
   a single *flat* aggregator at this stage.
3. ``aggregation-lowering`` — rewrites flat aggregators into merge trees of
   the configured fan-in (2 = binary tree, as in the paper).  Aggregators are
   never commuted by T, so deferring the lowering does not change any
   parallelization decision; it only separates *what to combine* from *how to
   combine it*.
4. ``eager-relays`` — the t3 relay insertion (§5.2).  Disabling it by name is
   exactly ``EagerMode.NONE``.

New passes (e.g. profile-driven width selection) register through
:func:`register_pass` and are enabled per-compilation with
``PashConfig(extra_passes=("my-pass",))``; the CLI exposes the inverse knob as
``--disable-pass NAME``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import AggregatorNode, CommandNode, DFGNode, FusedStage
from repro.runtime.executor import node_streams_statelessly
from repro.transform.auxiliary import (
    insert_cat_for_multi_input,
    insert_eager_relays,
    insert_split_before,
)
from repro.transform.parallelize import (
    is_parallelizable_node,
    parallelize_node,
    preceding_concatenation,
    reduce_stream_edges,
)
from repro.transform.pipeline import (
    EagerMode,
    OptimizationReport,
    ParallelizationConfig,
    SplitMode,
    effective_width,
)


@dataclass
class PassContext:
    """Everything a pass may read or write while running over one graph.

    ``state`` is the inter-pass scratchpad: earlier passes install rules or
    analysis results that later passes (or the T fixpoint) consume.
    """

    graph: DataflowGraph
    config: ParallelizationConfig
    report: OptimizationReport
    state: Dict[str, object] = field(default_factory=dict)


class GraphPass:
    """One named transformation over a dataflow graph."""

    #: Unique pass name, used for toggling (``disabled_passes``/``extra_passes``).
    name = "abstract"
    description = ""

    def run(self, context: PassContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class SplitInsertionPass(GraphPass):
    """Installs the t2 split rule consumed by the ``parallelize`` fixpoint."""

    name = "split-insertion"
    description = "t2: make single-input commands parallelizable via split+cat"

    #: Key under which the rule is published in :attr:`PassContext.state`.
    STATE_KEY = "split_inserter"

    def run(self, context: PassContext) -> None:
        config = context.config
        if config.split is SplitMode.NONE:
            return
        width = effective_width(config)

        def rule(graph: DataflowGraph, node: CommandNode):
            return insert_split_before(
                graph, node, width, strategy=config.split.value
            )

        context.state[self.STATE_KEY] = rule


class ParallelizePass(GraphPass):
    """The §4.2 fixpoint: apply t1/t2/T until no command can be parallelized."""

    name = "parallelize"
    description = "T: replace each parallelizable command with width copies"

    def run(self, context: PassContext) -> None:
        width = effective_width(context.config)
        if width < 2:
            return
        graph, config, report = context.graph, context.config, context.report
        split_rule = context.state.get(SplitInsertionPass.STATE_KEY)

        progress = True
        while progress:
            progress = False
            for node in list(graph.topological_order()):
                if node.node_id not in graph.nodes:
                    continue
                if not is_parallelizable_node(node):
                    continue
                assert isinstance(node, CommandNode)
                if node.parallelized_copy:
                    continue
                if _uses_positional_offset(node):
                    # head/tail invocations such as `tail -n +2` select lines
                    # by absolute position; splitting their input would change
                    # which lines are skipped, so they stay sequential.
                    continue
                if _is_trivial_concatenation(graph, node):
                    # A bare `cat` feeding a parallelizable consumer is
                    # commuted by the consumer's transformation; parallelizing
                    # it on its own only adds processes.
                    continue

                concatenation = preceding_concatenation(graph, node)
                if concatenation is None and len(node.data_inputs) >= 2:
                    # t1 yields min(inputs, width) copies; don't mutate the
                    # graph for a node the minimum-copies bar would reject.
                    if min(len(node.data_inputs), width) >= config.minimum_copies:
                        concatenation = insert_cat_for_multi_input(graph, node)
                if concatenation is None and split_rule is not None:
                    # A split yields `width` streams; don't insert one that
                    # cannot reach the minimum worthwhile copy count.
                    if len(node.data_inputs) == 1 and width >= config.minimum_copies:
                        concatenation = split_rule(graph, node)
                        if concatenation is not None:
                            report.inserted_splits += 1
                if concatenation is None or self._below_minimum_copies(
                    concatenation, config
                ):
                    if node.label() not in report.skipped_commands:
                        report.skipped_commands.append(node.label())
                    continue

                # fan_in=0: pure commands get one flat aggregator here; the
                # aggregation-lowering pass shapes it into a tree afterwards.
                copies = parallelize_node(
                    graph,
                    node,
                    concatenation,
                    fan_in=0,
                    max_copies=width,
                )
                if copies:
                    report.parallelized_commands.append(node.label())
                    progress = True
                    break  # Topological order changed; restart the scan.

    @staticmethod
    def _below_minimum_copies(concatenation, config: ParallelizationConfig) -> bool:
        """True when T would create fewer copies than the configured minimum.

        The copy count is the concatenation's stream count capped by the
        effective width; with the default ``minimum_copies=2`` this only
        excludes degenerate single-stream concatenations, which T skips
        anyway.
        """
        return min(len(concatenation.inputs), effective_width(config)) < config.minimum_copies


class AggregationLoweringPass(GraphPass):
    """Rewrites flat aggregators into merge trees of the configured fan-in."""

    name = "aggregation-lowering"
    description = "shape pure-command aggregation into fan-in merge trees"

    def run(self, context: PassContext) -> None:
        fan_in = context.config.aggregation_fan_in
        if fan_in <= 1:
            return  # 0/1 mean "one flat aggregator", already the case.
        graph = context.graph
        for node in list(graph.nodes.values()):
            if isinstance(node, AggregatorNode) and len(node.inputs) > fan_in:
                self._lower(graph, node, fan_in)

    @staticmethod
    def _lower(graph: DataflowGraph, root: AggregatorNode, fan_in: int) -> None:
        """Grow a tree below ``root``, which stays the final merge stage."""
        level = [graph.edge(edge_id) for edge_id in list(root.inputs)]
        root.inputs = []
        for edge in level:
            edge.target = None  # free the edges for the tree builder
        remaining = reduce_stream_edges(
            graph, root.aggregator, root.command_name, root.command_arguments, level, fan_in
        )
        for edge in remaining:
            edge.target = root.node_id
            root.inputs.append(edge.edge_id)


class EagerRelayPass(GraphPass):
    """The t3 relay insertion defeating the shell's lazy evaluation (§5.2)."""

    name = "eager-relays"
    description = "t3: buffer aggregator/cat/split edges with relay nodes"

    def run(self, context: PassContext) -> None:
        mode = context.config.eager
        if mode is EagerMode.NONE:
            return
        relays = insert_eager_relays(
            context.graph,
            eager=mode is EagerMode.EAGER,
            blocking=mode is EagerMode.BLOCKING,
        )
        context.report.inserted_relays = len(relays)


class FuseStagesPass(GraphPass):
    """Collapse maximal linear chains of stateless commands into one stage.

    The engine maps one process (plus per-edge pipes and pumps) to every
    node, so a straight line of stateless commands — ``grep | tr | cut`` —
    pays an OS pipe, a pump thread, and a chunk re-framing at every interior
    edge for data that could flow through a single in-process pipeline.
    This pass replaces each such chain with one
    :class:`~repro.dfg.nodes.FusedStage` that a single worker evaluates
    batch-at-a-time.  Fusion is gated on the Table-1 annotation class via
    :func:`repro.runtime.executor.node_streams_statelessly`, so it never
    crosses a fan-out/fan-in boundary, a relay (eager or blocking), a split,
    or an aggregator — exactly the places where the order-aware dataflow
    analysis needs real inter-process edges for deadlock-freedom.

    Disabled by ``fuse_stages=False`` on the config or by name
    (``--disable-pass fuse-stages``); the ablation reproduces the unfused
    graph bit-for-bit because fusion is pure node-composition.
    """

    name = "fuse-stages"
    description = "collapse linear stateless chains into single-worker stages"

    def run(self, context: PassContext) -> None:
        if not getattr(context.config, "fuse_stages", False):
            return
        graph = context.graph
        for node in list(graph.topological_order()):
            if node.node_id not in graph.nodes:
                continue  # already fused into an earlier chain
            if not self._fusable(graph, node):
                continue
            producer = self._single_producer(graph, node)
            if producer is not None and self._fusable(graph, producer):
                continue  # not a chain head; handled from the head
            chain = [node]
            while True:
                tail = chain[-1]
                edge = graph.edge(tail.outputs[0])
                if edge.target is None:
                    break
                successor = graph.node(edge.target)
                if not self._fusable(graph, successor):
                    break
                chain.append(successor)
            if len(chain) >= 2:
                self._fuse(graph, chain)
                context.report.fused_stages += 1

    @staticmethod
    def _fusable(graph: DataflowGraph, node: DFGNode) -> bool:
        """Single-input single-output stateless command (chain member shape)."""
        return (
            isinstance(node, CommandNode)
            and node_streams_statelessly(node)
            and len(node.inputs) == 1
            and len(node.outputs) == 1
        )

    @staticmethod
    def _single_producer(graph: DataflowGraph, node: DFGNode) -> Optional[DFGNode]:
        edge = graph.edge(node.inputs[0])
        return graph.node(edge.source) if edge.source is not None else None

    @staticmethod
    def _fuse(graph: DataflowGraph, chain: List[CommandNode]) -> FusedStage:
        """Splice one FusedStage in place of ``chain``, dropping interior edges."""
        head, tail = chain[0], chain[-1]
        input_edge = graph.edge(head.inputs[0])
        output_edge = graph.edge(tail.outputs[0])
        interior = [member.outputs[0] for member in chain[:-1]]

        stage = FusedStage(nodes=list(chain))
        graph.add_node(stage)
        for member in chain:
            graph.nodes.pop(member.node_id)
        for edge_id in interior:
            graph.edges.pop(edge_id)

        input_edge.target = stage.node_id
        stage.inputs = [input_edge.edge_id]
        output_edge.source = stage.node_id
        stage.outputs = [output_edge.edge_id]
        return stage


def _uses_positional_offset(node: CommandNode) -> bool:
    """True for head/tail invocations addressing absolute line positions."""
    if node.name not in ("head", "tail"):
        return False
    return any(argument.lstrip("-n") .startswith("+") for argument in node.arguments) or any(
        argument.startswith("+") for argument in node.arguments
    )


def _is_trivial_concatenation(graph: DataflowGraph, node: CommandNode) -> bool:
    """True for a flag-less ``cat`` whose consumer is itself parallelizable."""
    if node.name != "cat" or node.arguments:
        return False
    successors = graph.successors(node)
    if len(successors) != 1:
        # cat writing to the graph output: parallelizing it cannot help.
        return len(node.data_inputs) >= 1
    consumer = successors[0]
    return is_parallelizable_node(consumer) or not isinstance(consumer, CommandNode)


# ---------------------------------------------------------------------------
# Registry and pipeline construction
# ---------------------------------------------------------------------------

#: The default pipeline, in execution order.
DEFAULT_PIPELINE: List[Type[GraphPass]] = [
    SplitInsertionPass,
    ParallelizePass,
    AggregationLoweringPass,
    EagerRelayPass,
    FuseStagesPass,
]

#: Every registered pass, by name (defaults plus user-registered ones).
PASS_REGISTRY: Dict[str, Callable[[], GraphPass]] = {
    pass_class.name: pass_class for pass_class in DEFAULT_PIPELINE
}


def register_pass(pass_class: Type[GraphPass]) -> Type[GraphPass]:
    """Register a pass class so configs can enable it by name.

    Usable as a decorator.  Registered passes are appended after the default
    pipeline when named in ``extra_passes``.
    """
    if not pass_class.name or pass_class.name == GraphPass.name:
        raise ValueError("a pass must define a unique non-default `name`")
    if any(default.name == pass_class.name for default in DEFAULT_PIPELINE):
        # Silently shadowing a default pass would never take effect:
        # build_pipeline instantiates defaults first and drops duplicates.
        raise ValueError(
            f"cannot register {pass_class.name!r}: it would shadow a default "
            "pipeline pass (disable the default by name instead)"
        )
    PASS_REGISTRY[pass_class.name] = pass_class
    return pass_class


def unregister_pass(name: str) -> None:
    """Remove a registered pass (default-pipeline passes cannot be removed)."""
    if any(pass_class.name == name for pass_class in DEFAULT_PIPELINE):
        raise ValueError(f"cannot unregister default pass {name!r}")
    PASS_REGISTRY.pop(name, None)


def available_passes() -> List[str]:
    """Names of every registered pass (default pipeline first, then extras)."""
    ordered = [pass_class.name for pass_class in DEFAULT_PIPELINE]
    ordered.extend(sorted(name for name in PASS_REGISTRY if name not in ordered))
    return ordered


class PassManager:
    """An ordered list of passes applied to a graph under one configuration."""

    def __init__(self, passes: Sequence[GraphPass]):
        self.passes = list(passes)

    def names(self) -> List[str]:
        return [graph_pass.name for graph_pass in self.passes]

    def without(self, *names: str) -> "PassManager":
        return PassManager([p for p in self.passes if p.name not in names])

    def run(
        self,
        graph: DataflowGraph,
        config: Optional[ParallelizationConfig] = None,
        report: Optional[OptimizationReport] = None,
        tracer: Optional["Tracer"] = None,
    ) -> OptimizationReport:
        """Apply every pass in order, in place; returns the report.

        ``tracer`` (a :class:`repro.obs.tracer.Tracer`) records one span per
        pass, so a trace shows exactly where compile time goes.
        """
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER

            tracer = NULL_TRACER
        config = config or ParallelizationConfig()
        report = report or OptimizationReport()
        context = PassContext(graph=graph, config=config, report=report)
        started = time.perf_counter()
        for graph_pass in self.passes:
            with tracer.span(f"pass:{graph_pass.name}", "pass") as span:
                pass_started = time.perf_counter()
                graph_pass.run(context)
                elapsed = time.perf_counter() - pass_started
                report.pass_seconds[graph_pass.name] = elapsed
                span.set(seconds=elapsed, nodes=len(graph.nodes))
        graph.validate()
        report.compile_time_seconds = time.perf_counter() - started
        return report


def build_pipeline(
    disabled: Sequence[str] = (),
    extra: Sequence[str] = (),
) -> PassManager:
    """Build the default pass pipeline, with name-based toggling.

    The pipeline shape is config-independent (each pass self-gates on the
    config it receives at :meth:`PassManager.run` time).  ``disabled``
    removes default passes by name (``"eager-relays"`` reproduces
    ``EagerMode.NONE``, ``"split-insertion"`` reproduces ``SplitMode.NONE``);
    ``extra`` appends registered non-default passes.  Unknown names raise
    ``ValueError`` so typos fail loudly rather than silently changing the
    compilation.
    """
    known = set(PASS_REGISTRY)
    for name in list(disabled) + list(extra):
        if name not in known:
            raise ValueError(
                f"unknown pass {name!r}; available: {', '.join(available_passes())}"
            )
    passes: List[GraphPass] = [pass_class() for pass_class in DEFAULT_PIPELINE]
    for name in extra:
        if name not in [p.name for p in passes]:
            passes.append(PASS_REGISTRY[name]())
    return PassManager([p for p in passes if p.name not in set(disabled)])
