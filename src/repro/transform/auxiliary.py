"""Auxiliary transformations t1–t3 (§4.2) plus eager-relay insertion (§5.2).

* t1 — concatenate a node's multiple inputs with an explicit ``cat`` node so
  that the parallelization transformation can commute it.
* t2 — when a parallelizable node has a single input that is not produced by
  a concatenation, insert ``split`` followed by its inverse ``cat``.
* t3 — insert identity relay nodes; with the eager flag these become the
  runtime's eager buffers that defeat the shell's lazy evaluation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import AggregatorNode, CatNode, CommandNode, DFGNode, RelayNode, SplitNode


#: Commands whose multi-file invocations are equivalent to running the
#: command over the concatenation of those files, enabling transformation t1.
CONCATENATION_EQUIVALENT_COMMANDS = frozenset({"cat", "grep", "sort", "bzip2", "gunzip"})


def insert_cat_for_multi_input(graph: DataflowGraph, node: CommandNode) -> Optional[CatNode]:
    """Transformation t1: combine a node's data inputs with a ``cat`` node.

    Only applies to commands whose multi-input semantics is concatenation;
    returns the inserted node, or None when not applicable.
    """
    if not isinstance(node, CommandNode):
        return None
    if node.name not in CONCATENATION_EQUIVALENT_COMMANDS:
        return None
    data_inputs = node.data_inputs
    if len(data_inputs) < 2:
        return None

    cat_node = CatNode()
    graph.add_node(cat_node)
    for edge_id in data_inputs:
        edge = graph.edge(edge_id)
        edge.target = cat_node.node_id
        cat_node.inputs.append(edge_id)
    node.inputs = [edge_id for edge_id in node.inputs if edge_id not in data_inputs]
    joining = graph.add_edge(kind=EdgeKind.PIPE, source=cat_node.node_id, target=node.node_id)
    cat_node.outputs.append(joining.edge_id)
    node.inputs.insert(0, joining.edge_id)
    return cat_node


def insert_split_before(
    graph: DataflowGraph,
    node: CommandNode,
    width: int,
    strategy: str = "general",
) -> Optional[CatNode]:
    """Transformation t2: insert ``split`` + ``cat`` before ``node``.

    The node's single data input is re-routed into a :class:`SplitNode` with
    ``width`` outputs, which feed a fresh :class:`CatNode` that in turn feeds
    the node.  Returns the cat node (the parallelization transformation then
    commutes it), or None when the node does not have exactly one data input
    or ``width`` < 2.
    """
    if width < 2:
        return None
    data_inputs = node.data_inputs
    if len(data_inputs) != 1:
        return None

    input_edge = graph.edge(data_inputs[0])
    split_node = SplitNode(strategy=strategy)
    graph.add_node(split_node)

    # Re-target the original input into the split node.
    input_edge.target = split_node.node_id
    split_node.inputs.append(input_edge.edge_id)
    node.inputs = [edge_id for edge_id in node.inputs if edge_id != input_edge.edge_id]

    cat_node = CatNode()
    graph.add_node(cat_node)
    for _ in range(width):
        edge = graph.add_edge(kind=EdgeKind.PIPE, source=split_node.node_id, target=cat_node.node_id)
        split_node.outputs.append(edge.edge_id)
        cat_node.inputs.append(edge.edge_id)

    joining = graph.add_edge(kind=EdgeKind.PIPE, source=cat_node.node_id, target=node.node_id)
    cat_node.outputs.append(joining.edge_id)
    node.inputs.insert(0, joining.edge_id)
    return cat_node


def insert_relay(
    graph: DataflowGraph,
    edge: Edge,
    eager: bool = True,
    blocking: bool = False,
) -> RelayNode:
    """Transformation t3: splice an identity relay into ``edge``.

    The original edge keeps its producer; a new edge connects the relay to the
    original consumer.
    """
    consumer_id = edge.target
    relay = RelayNode(eager=eager, blocking=blocking)
    graph.add_node(relay)

    edge.target = relay.node_id
    relay.inputs.append(edge.edge_id)

    new_edge = graph.add_edge(kind=EdgeKind.PIPE, source=relay.node_id, target=consumer_id)
    relay.outputs.append(new_edge.edge_id)
    if consumer_id is not None:
        consumer = graph.node(consumer_id)
        consumer.inputs = [
            new_edge.edge_id if edge_id == edge.edge_id else edge_id for edge_id in consumer.inputs
        ]
        if hasattr(consumer, "config_inputs"):
            consumer.config_inputs = [
                new_edge.edge_id if edge_id == edge.edge_id else edge_id
                for edge_id in consumer.config_inputs
            ]
    return relay


def insert_eager_relays(
    graph: DataflowGraph,
    eager: bool = True,
    blocking: bool = False,
) -> List[RelayNode]:
    """Insert relays where the shell's laziness would otherwise stall the DFG.

    Relays are inserted on every input of an aggregator node, on all but the
    last input of each ``cat`` combiner, and after all but the last output of
    each ``split`` node — mirroring §5.2.
    """
    relays: List[RelayNode] = []
    for node in list(graph.nodes.values()):
        if isinstance(node, AggregatorNode):
            target_edges = [graph.edge(edge_id) for edge_id in list(node.inputs)]
        elif isinstance(node, CatNode):
            target_edges = [graph.edge(edge_id) for edge_id in list(node.inputs[:-1])]
        elif isinstance(node, SplitNode):
            target_edges = [graph.edge(edge_id) for edge_id in list(node.outputs[:-1])]
        else:
            continue
        if isinstance(node, SplitNode):
            for edge in target_edges:
                relays.append(insert_relay(graph, edge, eager=eager, blocking=blocking))
        else:
            for edge in target_edges:
                # Do not double-buffer an edge that already comes out of a relay.
                if edge.source is not None and isinstance(graph.node(edge.source), RelayNode):
                    continue
                relays.append(insert_relay(graph, edge, eager=eager, blocking=blocking))
    return relays
