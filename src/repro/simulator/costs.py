"""Per-command cost and selectivity models.

Costs are deliberately simple — a per-line CPU cost, an optional
``n log n`` complexity for sorting, a selectivity describing how many output
lines a command produces per input line, and a flag marking commands that
cannot emit anything before consuming their whole input.  The constants are
calibrated so that the *relative* behaviour matches the paper's observations
(grep with a complex regex is CPU-bound, `wc`/`cut` are cheap and IO-bound,
sort dominates its pipelines, merging is cheaper than sorting but not free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.dfg.nodes import (
    AggregatorNode,
    CatNode,
    CommandNode,
    DFGNode,
    FusedStage,
    RelayNode,
    SplitNode,
)


@dataclass
class CommandCost:
    """Cost description of one command (or helper node)."""

    #: CPU seconds per input line.
    seconds_per_line: float = 2e-7
    #: Output lines produced per input line (ignored when fixed_output_lines).
    selectivity: float = 1.0
    #: Commands like wc or head produce a fixed-size output.
    fixed_output_lines: Optional[int] = None
    #: True for commands that emit nothing until they consumed all input.
    blocking: bool = False
    #: "linear" or "nlogn" (sort-like) complexity in the input size.
    complexity: str = "linear"
    #: Per-process startup cost (exec, parsing flags, loading patterns).
    startup_seconds: float = 0.001

    def work_seconds(self, input_lines: int) -> float:
        """CPU time to process ``input_lines``."""
        lines = max(input_lines, 0)
        if self.complexity == "nlogn":
            factor = math.log2(lines) if lines > 2 else 1.0
            return self.startup_seconds + self.seconds_per_line * lines * factor
        return self.startup_seconds + self.seconds_per_line * lines

    def output_lines(self, input_lines: int) -> int:
        """Estimated number of output lines."""
        if self.fixed_output_lines is not None:
            return min(self.fixed_output_lines, max(input_lines, self.fixed_output_lines))
        return int(max(input_lines, 0) * self.selectivity)


_CHEAP = 1.5e-7
_MEDIUM = 6e-7
_EXPENSIVE = 4e-6


def _default_costs() -> Dict[str, CommandCost]:
    return {
        # Stateless text processing.
        "cat": CommandCost(seconds_per_line=5e-8),
        "tr": CommandCost(seconds_per_line=_CHEAP),
        "cut": CommandCost(seconds_per_line=_CHEAP),
        "sed": CommandCost(seconds_per_line=_MEDIUM),
        "grep": CommandCost(seconds_per_line=_MEDIUM, selectivity=0.25),
        "egrep": CommandCost(seconds_per_line=_MEDIUM, selectivity=0.25),
        "fgrep": CommandCost(seconds_per_line=_CHEAP, selectivity=0.25),
        "xargs": CommandCost(seconds_per_line=_MEDIUM),
        "fold": CommandCost(seconds_per_line=_CHEAP, selectivity=1.3),
        "rev": CommandCost(seconds_per_line=_CHEAP),
        "col": CommandCost(seconds_per_line=_CHEAP),
        "iconv": CommandCost(seconds_per_line=_CHEAP),
        "gunzip": CommandCost(seconds_per_line=_CHEAP, selectivity=3.0),
        "zcat": CommandCost(seconds_per_line=_CHEAP, selectivity=3.0),
        "awk": CommandCost(seconds_per_line=_MEDIUM),
        # Pure commands.
        "sort": CommandCost(seconds_per_line=_MEDIUM, blocking=True, complexity="nlogn"),
        "uniq": CommandCost(seconds_per_line=_CHEAP, selectivity=0.4),
        "wc": CommandCost(seconds_per_line=_CHEAP, fixed_output_lines=1, blocking=True),
        "head": CommandCost(seconds_per_line=2e-8, fixed_output_lines=10),
        "tail": CommandCost(seconds_per_line=2e-8, fixed_output_lines=10, blocking=True),
        "tac": CommandCost(seconds_per_line=_CHEAP, blocking=True),
        "comm": CommandCost(seconds_per_line=_MEDIUM, selectivity=0.6, blocking=True),
        "nl": CommandCost(seconds_per_line=_CHEAP),
        "join": CommandCost(seconds_per_line=_MEDIUM, selectivity=0.5, blocking=True),
        "paste": CommandCost(seconds_per_line=_CHEAP),
        # Non-parallelizable pure.
        "sha1sum": CommandCost(seconds_per_line=_MEDIUM, fixed_output_lines=1, blocking=True),
        "md5sum": CommandCost(seconds_per_line=_MEDIUM, fixed_output_lines=1, blocking=True),
        "diff": CommandCost(seconds_per_line=_MEDIUM, selectivity=0.2, blocking=True),
        # Use-case custom commands (annotated, outside POSIX/GNU).
        "html-to-text": CommandCost(seconds_per_line=_EXPENSIVE, selectivity=0.6),
        "url-extract": CommandCost(seconds_per_line=_MEDIUM, selectivity=0.3),
        "word-stem": CommandCost(seconds_per_line=_EXPENSIVE),
        "strip-punct": CommandCost(seconds_per_line=_CHEAP),
        "lowercase": CommandCost(seconds_per_line=_CHEAP),
        "bigrams": CommandCost(seconds_per_line=_MEDIUM, selectivity=7.0),
        "trigrams": CommandCost(seconds_per_line=_MEDIUM, selectivity=3.0, blocking=True),
        # Fetch stand-ins: one input line names a remote object whose download
        # and decompression dominates (hundreds of output lines per input).
        "fetch-station": CommandCost(seconds_per_line=0.08, selectivity=365.0),
        "fetch-page": CommandCost(seconds_per_line=0.15, selectivity=200.0),
        "curl": CommandCost(seconds_per_line=0.08, selectivity=365.0),
        "seq": CommandCost(seconds_per_line=5e-8),
        "echo": CommandCost(seconds_per_line=5e-8),
    }


_AGGREGATOR_COSTS: Dict[str, CommandCost] = {
    "concat": CommandCost(seconds_per_line=5e-8),
    # GNU sort's merge phase is memory-bandwidth bound and does not overlap
    # well across tree levels; modelling it as a blocking stage with a
    # noticeable per-line cost reproduces the limited scalability of sort
    # observed in the paper (§6.5: "sort's scalability is inherently limited").
    "merge_sort": CommandCost(seconds_per_line=1.0e-6, blocking=True),
    "merge_uniq": CommandCost(seconds_per_line=1.5e-7, selectivity=0.95),
    "merge_uniq_count": CommandCost(seconds_per_line=1.5e-7, selectivity=0.95),
    "merge_wc": CommandCost(seconds_per_line=1e-7, fixed_output_lines=1),
    "merge_tac": CommandCost(seconds_per_line=1e-7),
    "merge_head": CommandCost(seconds_per_line=2e-8, fixed_output_lines=10),
    "merge_tail": CommandCost(seconds_per_line=2e-8, fixed_output_lines=10),
    "merge_comm": CommandCost(seconds_per_line=1e-7),
    "sum": CommandCost(seconds_per_line=1e-7, fixed_output_lines=1),
}


class CostModel:
    """Maps DFG nodes to :class:`CommandCost` entries."""

    def __init__(
        self,
        command_costs: Optional[Dict[str, CommandCost]] = None,
        default: Optional[CommandCost] = None,
    ) -> None:
        self.command_costs = dict(command_costs or _default_costs())
        self.default = default or CommandCost(seconds_per_line=_MEDIUM)

    # ------------------------------------------------------------------

    def override(self, name: str, **changes) -> "CostModel":
        """Return a new model with the named command's cost fields replaced."""
        updated = dict(self.command_costs)
        updated[name] = replace(updated.get(name, self.default), **changes)
        return CostModel(updated, self.default)

    def cost_for(self, node: DFGNode) -> CommandCost:
        """The cost entry for a node, taking flags into account."""
        if isinstance(node, AggregatorNode):
            return _AGGREGATOR_COSTS.get(node.aggregator, CommandCost(seconds_per_line=1.5e-7))
        if isinstance(node, CatNode):
            return CommandCost(seconds_per_line=5e-8)
        if isinstance(node, RelayNode):
            return CommandCost(seconds_per_line=3e-8)
        if isinstance(node, SplitNode):
            return CommandCost(seconds_per_line=6e-8, blocking=node.strategy == "general")
        if isinstance(node, FusedStage):
            return self._compose(node)
        if isinstance(node, CommandNode):
            base = self.command_costs.get(node.name, self.default)
            return self._refine(node, base)
        return self.default

    def _compose(self, stage: FusedStage) -> CommandCost:
        """Cost of a fused chain: serialized member work, composed selectivity.

        The figures pipeline simulates the paper's one-process-per-node
        runtime (fusion pinned off there), so this composition only backs
        ad-hoc simulations of fused graphs; it charges each member's
        per-line cost scaled by the fraction of lines reaching it.
        """
        seconds = 0.0
        selectivity = 1.0
        startup = 0.0
        blocking = False
        for member in stage.nodes:
            cost = self.cost_for(member)
            seconds += selectivity * cost.seconds_per_line
            selectivity *= cost.selectivity
            startup = max(startup, cost.startup_seconds)
            blocking = blocking or cost.blocking
        return CommandCost(
            seconds_per_line=seconds,
            selectivity=selectivity,
            startup_seconds=startup,
            blocking=blocking,
        )

    # ------------------------------------------------------------------

    def _refine(self, node: CommandNode, base: CommandCost) -> CommandCost:
        """Adjust a base cost using the node's flags."""
        arguments = node.arguments
        if node.name == "xargs":
            # xargs' cost is the wrapped command's cost (plus negligible glue).
            wrapped = self._xargs_wrapped_command(arguments)
            if wrapped is not None and wrapped in self.command_costs:
                return self.command_costs[wrapped]
        if node.name in ("head", "tail"):
            count = _numeric_flag(arguments, "-n", default=10)
            return replace(base, fixed_output_lines=count)
        if node.name == "grep":
            if "-c" in arguments:
                return replace(base, fixed_output_lines=1, blocking=True)
            if "-v" in arguments or any("v" in a[1:] for a in arguments if _short_flag(a)):
                return replace(base, selectivity=max(1.0 - base.selectivity, 0.05))
        if node.name == "uniq" and any("c" in a[1:] for a in arguments if _short_flag(a)):
            return replace(base, selectivity=base.selectivity)
        if node.name == "sort" and "-m" in arguments:
            return replace(base, complexity="linear", blocking=False)
        if node.name == "cat" and any("n" in a[1:] for a in arguments if _short_flag(a)):
            return replace(base, seconds_per_line=_CHEAP)
        return base

    @staticmethod
    def _xargs_wrapped_command(arguments) -> Optional[str]:
        """The command an xargs invocation wraps, skipping -n and its value."""
        index = 0
        while index < len(arguments):
            argument = arguments[index]
            if argument == "-n":
                index += 2
                continue
            if argument.startswith("-"):
                index += 1
                continue
            if argument.isdigit():
                index += 1
                continue
            return argument
        return None


def _short_flag(argument: str) -> bool:
    return argument.startswith("-") and not argument.startswith("--") and len(argument) > 1


def _numeric_flag(arguments, flag: str, default: int) -> int:
    for index, argument in enumerate(arguments):
        if argument == flag and index + 1 < len(arguments):
            try:
                return int(arguments[index + 1])
            except ValueError:
                return default
        if argument.startswith(flag) and argument != flag:
            try:
                return int(argument[len(flag):])
            except ValueError:
                continue
    return default


def default_cost_model() -> CostModel:
    """A fresh copy of the default cost model."""
    return CostModel()
