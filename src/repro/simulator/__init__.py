"""Performance model used to regenerate the paper's speedup figures.

The paper's evaluation ran on a 64-core Xeon with multi-GB inputs.  This
reproduction replaces that testbed with an analytic, discrete-event-style
model of DFG execution that captures exactly the mechanisms the paper credits
for its results:

* task parallelism between pipeline stages (a sequential pipeline is already
  bounded by its slowest stage, not the sum of stages),
* data parallelism from the PaSh transformations (each copy processes a
  fraction of the stream),
* blocking commands (``sort``) that cut the pipeline into segments,
* merge/aggregation costs that bound scaling for pure commands,
* the laziness pathology removed by eager relays (without them, the branches
  feeding a combiner serialize),
* per-process spawn overhead and PaSh's constant setup cost, which produce
  the slowdowns observed for sub-second scripts, and
* a bounded number of cores.

Absolute numbers are not meaningful; ratios (speedups) and their shape across
parallelism levels are what the benchmark harness reports.
"""

from repro.simulator.costs import CommandCost, CostModel, default_cost_model
from repro.simulator.machine import MachineModel
from repro.simulator.simulate import SimulationResult, simulate_graph, simulate_script_graphs

__all__ = [
    "CommandCost",
    "CostModel",
    "MachineModel",
    "SimulationResult",
    "default_cost_model",
    "simulate_graph",
    "simulate_script_graphs",
]
