"""Analytic discrete-event-style simulation of DFG execution.

For every node the simulator derives three quantities:

* ``available`` — when the node's output starts to become available to its
  consumers (streaming nodes forward data almost immediately; blocking nodes
  such as ``sort`` only after they finished),
* ``finish`` — when the node's output is complete, and
* ``work`` — the CPU seconds it consumes.

Streaming stages overlap (a chain's finish time is governed by its slowest
stage), blocking stages cut the pipeline, and combiners (``cat`` and
aggregators) treat their input branches differently depending on whether
eager relays feed them:

* eager relays   → branches progress independently (max of finishes),
* blocking relay → branches progress independently but the combiner starts
  only after all of them finished,
* no relay       → the branches' emission serializes (the §5.2 laziness
  pathology).

The resulting makespan is finally adjusted for the machine's core count and
per-process spawn costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.dfg.edges import EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import AggregatorNode, CatNode, CommandNode, DFGNode, RelayNode, SplitNode
from repro.simulator.costs import CostModel, default_cost_model
from repro.simulator.machine import MachineModel

#: Per-line cost of pushing output through an unbuffered FIFO to a consumer
#: that is not yet reading (the serialized-emission penalty of lazily-read
#: branches).  Eager relays remove this cost by draining the producer at full
#: speed.
_EMIT_SECONDS_PER_LINE = 2.5e-7


@dataclass
class NodeTiming:
    """Timing derived for one node."""

    node_id: int
    label: str
    start: float
    available: float
    finish: float
    work: float
    input_lines: int
    output_lines: int


@dataclass
class SimulationResult:
    """Outcome of simulating one graph."""

    total_seconds: float
    critical_path_seconds: float
    work_seconds: float
    process_count: int
    node_timings: Dict[int, NodeTiming] = field(default_factory=dict)
    edge_lines: Dict[int, int] = field(default_factory=dict)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of ``baseline`` relative to this result (baseline / self)."""
        if self.total_seconds <= 0:
            return float("inf")
        return baseline.total_seconds / self.total_seconds


def simulate_graph(
    graph: DataflowGraph,
    input_lines: Dict[str, int],
    machine: Optional[MachineModel] = None,
    cost_model: Optional[CostModel] = None,
    include_setup: bool = False,
    stdin_lines: int = 0,
) -> SimulationResult:
    """Simulate ``graph`` given the number of lines behind each input file."""
    machine = machine or MachineModel.paper_testbed()
    cost_model = cost_model or default_cost_model()

    edge_lines: Dict[int, int] = {}
    edge_available: Dict[int, float] = {}
    edge_finish: Dict[int, float] = {}
    edge_emit_duration: Dict[int, float] = {}

    input_edges = [edge for edge in graph.edges.values() if edge.is_graph_input]
    reader_count = max(len(input_edges), 1)
    for edge in input_edges:
        if edge.kind is EdgeKind.STDIN:
            lines = stdin_lines
        elif edge.kind is EdgeKind.FILE:
            lines = input_lines.get(edge.name or "", 0)
        else:
            lines = 0
        edge_lines[edge.edge_id] = lines
        edge_available[edge.edge_id] = 0.0
        edge_finish[edge.edge_id] = machine.disk_seconds(lines, readers=reader_count)
        edge_emit_duration[edge.edge_id] = edge_finish[edge.edge_id]

    node_timings: Dict[int, NodeTiming] = {}
    total_work = 0.0

    for node in graph.topological_order():
        cost = cost_model.cost_for(node)
        in_lines = [edge_lines.get(edge_id, 0) for edge_id in node.inputs]
        total_in = sum(in_lines)

        start, input_complete, extra_busy = _combine_inputs(
            graph, node, edge_available, edge_finish, edge_emit_duration
        )

        work = cost.work_seconds(total_in)
        total_work += work

        finish = max(input_complete, start + work + extra_busy)
        blocking = cost.blocking or isinstance(node, SplitNode) and node.strategy == "general"
        available = finish if blocking else start + cost.startup_seconds

        out_lines = _output_lines(node, cost, total_in, in_lines)
        fifo_drain = sum(out_lines) * _EMIT_SECONDS_PER_LINE
        emit_duration = fifo_drain if blocking else max(finish - start, fifo_drain)

        node_timings[node.node_id] = NodeTiming(
            node_id=node.node_id,
            label=node.label(),
            start=start,
            available=available,
            finish=finish,
            work=work,
            input_lines=total_in,
            output_lines=sum(out_lines),
        )

        for edge_id, lines in zip(node.outputs, out_lines):
            edge_lines[edge_id] = lines
            edge_available[edge_id] = available
            edge_finish[edge_id] = finish
            edge_emit_duration[edge_id] = emit_duration

    critical_path = max(
        (timing.finish for timing in node_timings.values()), default=0.0
    )
    process_count = len(graph.nodes)

    total = max(critical_path, total_work / max(machine.cores, 1))
    total += machine.spawn_seconds(process_count)
    if include_setup:
        total += machine.setup_seconds
    else:
        total += machine.sequential_setup_seconds

    return SimulationResult(
        total_seconds=total,
        critical_path_seconds=critical_path,
        work_seconds=total_work,
        process_count=process_count,
        node_timings=node_timings,
        edge_lines=edge_lines,
    )


def simulate_script_graphs(
    graphs: Iterable[DataflowGraph],
    input_lines: Dict[str, int],
    machine: Optional[MachineModel] = None,
    cost_model: Optional[CostModel] = None,
    include_setup: bool = False,
) -> SimulationResult:
    """Simulate a script made of several regions executed back to back."""
    machine = machine or MachineModel.paper_testbed()
    total = 0.0
    critical = 0.0
    work = 0.0
    processes = 0
    merged_edges: Dict[int, int] = {}
    carried_lines = dict(input_lines)
    first = True
    for graph in graphs:
        result = simulate_graph(
            graph,
            carried_lines,
            machine=machine,
            cost_model=cost_model,
            include_setup=include_setup and first,
        )
        first = False
        total += result.total_seconds
        critical += result.critical_path_seconds
        work += result.work_seconds
        processes += result.process_count
        merged_edges.update(result.edge_lines)
        # Files written by one region are read by later regions.
        for edge in graph.output_edges():
            if edge.kind is EdgeKind.FILE and edge.name:
                carried_lines[edge.name] = result.edge_lines.get(edge.edge_id, 0)
    return SimulationResult(
        total_seconds=total,
        critical_path_seconds=critical,
        work_seconds=work,
        process_count=processes,
        edge_lines=merged_edges,
    )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _combine_inputs(
    graph: DataflowGraph,
    node: DFGNode,
    edge_available: Dict[int, float],
    edge_finish: Dict[int, float],
    edge_emit_duration: Dict[int, float],
):
    """Return (start, input_complete, extra_busy) for a node.

    ``extra_busy`` is additional busy time charged to the node itself: when
    its input branches are not eagerly buffered, the node's reading
    interleaves with each producer's (serialized) emission, so the producers'
    emission durations add to the node's own processing instead of
    overlapping with it.
    """
    if not node.inputs:
        return 0.0, 0.0, 0.0

    availables = [edge_available.get(edge_id, 0.0) for edge_id in node.inputs]
    finishes = [edge_finish.get(edge_id, 0.0) for edge_id in node.inputs]

    if len(node.inputs) == 1 or not isinstance(node, (CatNode, AggregatorNode, CommandNode)):
        return min(availables), max(finishes), 0.0

    # Multi-input combiner: the branch behaviour depends on relays.
    modes = []
    for edge_id in node.inputs:
        edge = graph.edge(edge_id)
        producer = graph.node(edge.source) if edge.source is not None else None
        if isinstance(producer, RelayNode):
            modes.append("blocking" if producer.blocking else "eager")
        else:
            modes.append("lazy")

    if all(mode == "eager" for mode in modes):
        return min(availables), max(finishes), 0.0
    if all(mode == "blocking" for mode in modes):
        complete = max(finishes)
        return complete, complete, 0.0
    # At least one lazily-read branch: its emission serializes with the
    # combiner's own processing (§5.2 laziness pathology, Fig. 6).
    emissions = [
        edge_emit_duration.get(edge_id, 0.0)
        for edge_id, mode in zip(node.inputs, modes)
        if mode == "lazy"
    ]
    serialized = availables[0] + sum(emissions)
    return availables[0], max(max(finishes), serialized), sum(emissions)


def _output_lines(node: DFGNode, cost, total_in: int, in_lines: List[int]) -> List[int]:
    """Lines carried by each output edge of ``node``."""
    fan_out = max(len(node.outputs), 1)
    if isinstance(node, SplitNode):
        base, remainder = divmod(total_in, fan_out)
        return [base + (1 if index < remainder else 0) for index in range(fan_out)]
    if isinstance(node, (CatNode, RelayNode)):
        return [total_in] * fan_out
    produced = cost.output_lines(total_in)
    return [produced] * fan_out
