"""The machine model: cores, spawn overhead, and I/O characteristics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MachineModel:
    """Parameters of the simulated execution platform.

    Defaults approximate the paper's testbed: 64 physical cores, pipes with a
    64 KiB kernel buffer (expressed in lines), a fraction of a millisecond to
    fork/exec a process, and roughly one second of constant PaSh setup
    (compilation is measured separately; this models fifo creation, spawning
    the wrapper shell, and teardown).
    """

    cores: int = 64
    #: Seconds to spawn one extra process (fork/exec + wiring its FIFOs).
    process_spawn_seconds: float = 0.002
    #: Constant per-execution overhead of the PaSh-generated script.
    setup_seconds: float = 0.9
    #: Constant startup of the sequential script (shell + first exec).
    sequential_setup_seconds: float = 0.05
    #: Lines that fit in a kernel pipe buffer (64 KiB at ~80 bytes/line).
    pipe_buffer_lines: int = 800
    #: Sequential read throughput of the storage backing input files
    #: (lines/second; ~1 GB/s at ~80 bytes per line).
    disk_lines_per_second: float = 12_500_000.0
    #: Aggregate read throughput when many processes stream from disk at once.
    disk_parallel_scaling: float = 4.0

    def disk_seconds(self, lines: int, readers: int = 1) -> float:
        """Time to pull ``lines`` from storage with ``readers`` concurrent readers."""
        effective = self.disk_lines_per_second * min(
            float(max(readers, 1)), self.disk_parallel_scaling
        )
        return lines / effective

    def spawn_seconds(self, processes: int) -> float:
        """Total time spent creating ``processes`` (spawns are serialized)."""
        return self.process_spawn_seconds * max(processes, 0)

    @classmethod
    def paper_testbed(cls) -> "MachineModel":
        """The default 64-core configuration used throughout the evaluation."""
        return cls()

    @classmethod
    def laptop(cls) -> "MachineModel":
        """A small configuration used in tests to exercise core limits."""
        return cls(cores=4, setup_seconds=0.3)
