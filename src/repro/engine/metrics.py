"""Per-node and per-run execution metrics.

The simulator estimates where time *would* go; the engine measures where it
*actually* goes.  Every worker reports how long it ran, how many bytes and
lines crossed its channels, and which OS process executed it, so the
evaluation harness can compute Fig. 7-style speedups from wall-clock time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping


@dataclass
class NodeMetrics:
    """Measurements reported by one worker process."""

    node_id: int
    label: str
    kind: str
    pid: int
    wall_seconds: float = 0.0
    #: Seconds inside the node's own evaluation (registry/aggregator calls);
    #: ``wall_seconds - compute_seconds`` is time spent streaming/waiting.
    compute_seconds: float = 0.0
    #: True when this node ran on a reused pool worker instead of a fresh
    #: process.
    reused_worker: bool = False
    bytes_in: int = 0
    bytes_out: int = 0
    lines_in: int = 0
    lines_out: int = 0
    #: True when the node ran a real host binary instead of the Python
    #: command implementation.
    host_command: bool = False
    #: High-water mark (bytes) of the largest single in-memory stream buffer
    #: this node held — eager-pump windows and output accumulators.  Stays
    #: at or below the configured spill threshold when spilling is enabled.
    peak_buffered_bytes: int = 0
    #: Total bytes this node's buffers wrote to spill storage on disk.
    spilled_bytes: int = 0
    #: Number of chunks that went through spill storage.
    spill_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Stable flat-JSON schema: exactly the dataclass fields."""
        return {
            metrics_field.name: getattr(self, metrics_field.name)
            for metrics_field in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NodeMetrics":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        field_names = {metrics_field.name for metrics_field in dataclasses.fields(cls)}
        unknown = set(payload) - field_names
        if unknown:
            raise ValueError(f"unknown NodeMetrics fields: {', '.join(sorted(unknown))}")
        return cls(**dict(payload))


@dataclass
class EngineMetrics:
    """Aggregate measurements for one engine run."""

    backend: str = "parallel"
    elapsed_seconds: float = 0.0
    nodes: List[NodeMetrics] = field(default_factory=list)
    #: OS processes created for this run (pool growth + dedicated forks).
    processes_spawned: int = 0
    #: Nodes served by an already-running pool worker (the amortization win).
    processes_reused: int = 0
    #: Seconds spent creating processes and dispatching plans this run.
    spawn_seconds: float = 0.0
    #: Stateless chains the ``fuse-stages`` pass collapsed in the executed
    #: graph (each eliminated ``len(chain) - 1`` processes and pipes).
    stages_fused: int = 0
    #: Commands eliminated as separate processes by those fusions.
    commands_fused: int = 0
    #: Non-blocking relay nodes bridged pipe-to-pipe instead of running as
    #: forwarder processes.
    relays_elided: int = 0
    #: Channel inputs read directly (no eager-pump thread, no extra copy).
    edges_direct: int = 0
    #: Channel inputs drained through eager pumps (deadlock-relevant fan-in).
    edges_buffered: int = 0
    #: Nodes executed on remote cluster workers (0 for single-host backends).
    remote_tasks: int = 0
    #: Tasks re-dispatched after a cluster worker was lost mid-run.
    requeued_tasks: int = 0
    #: Cluster workers registered when the run started (0 = not a cluster run).
    cluster_workers: int = 0
    #: Execution attempts the resilience supervisor retried after a
    #: retryable failure (0 = every attempt succeeded first try).
    runs_retried: int = 0
    #: Supervised runs that exhausted retries and completed on the
    #: sequential interpreter instead (the degradation ladder's last rung).
    degraded_runs: int = 0

    @property
    def worker_count(self) -> int:
        """Number of distinct OS processes that executed nodes."""
        return len({node.pid for node in self.nodes})

    @property
    def total_bytes_moved(self) -> int:
        """Bytes that crossed engine channels (counted at the reader side)."""
        return sum(node.bytes_in for node in self.nodes)

    @property
    def total_node_seconds(self) -> float:
        """Sum of per-node wall times (the work the run parallelized)."""
        return sum(node.wall_seconds for node in self.nodes)

    @property
    def peak_buffered_bytes(self) -> int:
        """Largest single in-memory stream buffer held by any node.

        This is the engine's bounded-memory guarantee, observable: with
        spilling enabled it never exceeds the configured spill threshold.
        """
        return max((node.peak_buffered_bytes for node in self.nodes), default=0)

    @property
    def total_spilled_bytes(self) -> int:
        """Bytes the run's buffers spilled to disk (0 = fit in memory)."""
        return sum(node.spilled_bytes for node in self.nodes)

    @property
    def total_spill_events(self) -> int:
        """Chunks that went through spill storage across the whole run."""
        return sum(node.spill_events for node in self.nodes)

    @property
    def worker_utilization(self) -> float:
        """Mean fraction of the run each worker spent busy (0..1 per worker).

        Values near 1 mean workers ran the whole time; a width-w graph whose
        branches overlap perfectly approaches ``total_node_seconds /
        elapsed_seconds == w``, so the mean per-worker busy fraction is that
        ratio divided by the worker count.
        """
        if self.elapsed_seconds <= 0 or not self.nodes:
            return 0.0
        return self.total_node_seconds / self.elapsed_seconds / max(1, self.worker_count)

    def by_node(self) -> Dict[int, NodeMetrics]:
        return {node.node_id: node for node in self.nodes}

    @property
    def total_compute_seconds(self) -> float:
        """Sum of per-node evaluation time (the rest of node wall is streaming)."""
        return sum(node.compute_seconds for node in self.nodes)

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON schema: every field, nodes as dicts, plus ``derived``.

        The ``derived`` sub-dict holds the read-only aggregate properties
        (``worker_count``, ``total_bytes_moved``…) for consumers that do not
        want to recompute them; :meth:`from_dict` ignores it, so the document
        round-trips.
        """
        payload: Dict[str, Any] = {}
        for metrics_field in dataclasses.fields(self):
            value = getattr(self, metrics_field.name)
            if metrics_field.name == "nodes":
                value = [node.to_dict() for node in value]
            payload[metrics_field.name] = value
        payload["derived"] = {
            "worker_count": self.worker_count,
            "total_bytes_moved": self.total_bytes_moved,
            "total_node_seconds": self.total_node_seconds,
            "total_compute_seconds": self.total_compute_seconds,
            "peak_buffered_bytes": self.peak_buffered_bytes,
            "total_spilled_bytes": self.total_spilled_bytes,
            "total_spill_events": self.total_spill_events,
            "worker_utilization": self.worker_utilization,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineMetrics":
        """Inverse of :meth:`to_dict` (the ``derived`` block is recomputed)."""
        field_names = {metrics_field.name for metrics_field in dataclasses.fields(cls)}
        unknown = set(payload) - field_names - {"derived"}
        if unknown:
            raise ValueError(f"unknown EngineMetrics fields: {', '.join(sorted(unknown))}")
        values = {key: value for key, value in payload.items() if key in field_names}
        if "nodes" in values:
            values["nodes"] = [NodeMetrics.from_dict(node) for node in values["nodes"]]
        return cls(**values)

    def merge(self, other: "EngineMetrics") -> None:
        """Fold another run's metrics in (used for multi-region scripts)."""
        self.elapsed_seconds += other.elapsed_seconds
        self.nodes.extend(other.nodes)
        self.processes_spawned += other.processes_spawned
        self.processes_reused += other.processes_reused
        self.spawn_seconds += other.spawn_seconds
        self.stages_fused += other.stages_fused
        self.commands_fused += other.commands_fused
        self.relays_elided += other.relays_elided
        self.edges_direct += other.edges_direct
        self.edges_buffered += other.edges_buffered
        self.remote_tasks += other.remote_tasks
        self.requeued_tasks += other.requeued_tasks
        self.runs_retried += other.runs_retried
        self.degraded_runs += other.degraded_runs
        # The fleet is shared across regions, not additive per region.
        self.cluster_workers = max(self.cluster_workers, other.cluster_workers)

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI's --report)."""
        digest = (
            f"{len(self.nodes)} nodes on {self.worker_count} workers in "
            f"{self.elapsed_seconds * 1000:.1f} ms; "
            f"{self.total_bytes_moved} bytes moved; "
            f"utilization {self.worker_utilization:.0%}"
        )
        if self.processes_spawned or self.processes_reused:
            digest += (
                f"; {self.processes_spawned} spawned + "
                f"{self.processes_reused} reused "
                f"(spawn {self.spawn_seconds * 1000:.1f} ms)"
            )
        if self.stages_fused or self.relays_elided:
            digest += (
                f"; fused {self.commands_fused} commands into "
                f"{self.stages_fused} stages, elided {self.relays_elided} relays"
            )
        if self.cluster_workers:
            digest += (
                f"; {self.remote_tasks} tasks on {self.cluster_workers} "
                f"cluster workers"
            )
            if self.requeued_tasks:
                digest += f" ({self.requeued_tasks} requeued)"
        if self.runs_retried or self.degraded_runs:
            digest += (
                f"; {self.runs_retried} retried, "
                f"{self.degraded_runs} degraded to interpreter"
            )
        if self.total_spilled_bytes:
            digest += (
                f"; spilled {self.total_spilled_bytes} bytes to disk "
                f"({self.total_spill_events} chunks, "
                f"peak buffer {self.peak_buffered_bytes} bytes)"
            )
        return digest
