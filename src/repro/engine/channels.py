"""OS-pipe channels: the streams of the parallel execution engine.

A :class:`Channel` wraps one ``os.pipe`` — the engine's realization of a DFG
edge.  Framing is newline-delimited UTF-8 with writes batched into
``chunk_size`` blocks, so tiny lines do not cost one syscall each.
Backpressure is the kernel's: a producer that outruns its consumer blocks in
``write(2)`` exactly like a process writing to a full FIFO, which is the
behaviour PaSh's eager relays exist to mitigate (§5.2).

:class:`EagerPump` is the engine-side counterpart of
:class:`repro.runtime.eager.EagerBuffer`: a thread that drains a reader into
an unbounded in-memory buffer as fast as the producer can write.  Every
worker pumps all of its inputs concurrently, which (a) keeps upstream
producers from ever blocking on an idle consumer and (b) makes the engine
deadlock-free for arbitrary fan-in/fan-out graph shapes.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, List, Optional

#: Default framing-chunk size; matches a typical Linux pipe buffer.
DEFAULT_CHUNK_SIZE = 1 << 16


class ChannelError(RuntimeError):
    """Raised on invalid channel operations (e.g. writing after close)."""


def encode_lines(lines: Iterable[str]) -> bytes:
    """Frame a stream as newline-terminated UTF-8 bytes."""
    text = "".join(line + "\n" for line in lines)
    return text.encode("utf-8")


def decode_lines(data: bytes) -> List[str]:
    """Inverse of :func:`encode_lines` (tolerates a missing final newline)."""
    if not data:
        return []
    text = data.decode("utf-8")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


class Channel:
    """One unidirectional byte channel backed by an OS pipe."""

    def __init__(self, edge_id: int = -1, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.edge_id = edge_id
        self.chunk_size = chunk_size
        self.read_fd, self.write_fd = os.pipe()

    def fds(self) -> List[int]:
        return [self.read_fd, self.write_fd]

    def reader(self) -> "ChannelReader":
        return ChannelReader(self.read_fd, chunk_size=self.chunk_size)

    def writer(self) -> "ChannelWriter":
        return ChannelWriter(self.write_fd, chunk_size=self.chunk_size)

    def close(self) -> None:
        """Close both ends (idempotent; used by the parent after forking)."""
        for fd in (self.read_fd, self.write_fd):
            try:
                os.close(fd)
            except OSError:
                pass


class ChannelWriter:
    """Producer end of a channel: chunked, counted line writes."""

    def __init__(self, fd: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.fd = fd
        self.chunk_size = max(1, chunk_size)
        self.bytes_written = 0
        self.lines_written = 0
        self._buffer = bytearray()
        self._closed = False

    def write_line(self, line: str) -> None:
        if self._closed:
            raise ChannelError("cannot write to a closed channel")
        self._buffer += (line + "\n").encode("utf-8")
        self.lines_written += 1
        if len(self._buffer) >= self.chunk_size:
            self.flush()

    def write_lines(self, lines: Iterable[str]) -> None:
        for line in lines:
            self.write_line(line)

    def flush(self) -> None:
        view = memoryview(bytes(self._buffer))
        self._buffer.clear()
        while view:
            written = os.write(self.fd, view)
            self.bytes_written += written
            view = view[written:]

    def close(self) -> None:
        """Flush pending bytes and signal EOF to the consumer."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True
            try:
                os.close(self.fd)
            except OSError:
                pass

    def abandon(self) -> None:
        """Close without flushing (used when the consumer is already gone)."""
        self._closed = True
        self._buffer.clear()
        try:
            os.close(self.fd)
        except OSError:
            pass


class ChannelReader:
    """Consumer end of a channel: chunked, counted reads until EOF."""

    def __init__(self, fd: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.fd = fd
        self.chunk_size = max(1, chunk_size)
        self.bytes_read = 0
        self.lines_read = 0
        self._closed = False

    def read_lines(self) -> List[str]:
        """Drain the channel to EOF and return the framed lines."""
        chunks: List[bytes] = []
        while True:
            chunk = os.read(self.fd, self.chunk_size)
            if not chunk:
                break
            self.bytes_read += len(chunk)
            chunks.append(chunk)
        lines = decode_lines(b"".join(chunks))
        self.lines_read += len(lines)
        self.close()
        return lines

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            os.close(self.fd)
        except OSError:
            pass


class EagerPump(threading.Thread):
    """Drain a reader into memory concurrently (the engine's eager relay).

    One pump per input edge lets a worker consume all of its inputs at the
    producers' pace, mirroring :class:`repro.runtime.eager.EagerBuffer`'s
    unbounded buffering with a real thread instead of a simulated one.
    """

    def __init__(self, reader: ChannelReader) -> None:
        super().__init__(daemon=True)
        self.reader = reader
        self._lines: List[str] = []
        self._error: Optional[BaseException] = None

    def run(self) -> None:  # pragma: no cover - exercised via result()
        try:
            self._lines = self.reader.read_lines()
        except BaseException as exc:  # noqa: BLE001 - re-raised in result()
            self._error = exc

    def result(self) -> List[str]:
        """Join the pump and return the buffered stream."""
        self.join()
        if self._error is not None:
            raise self._error
        return self._lines
