"""OS-pipe channels: the streams of the parallel execution engine.

A :class:`Channel` wraps one ``os.pipe`` — the engine's realization of a DFG
edge.  Framing is newline-delimited UTF-8 with writes batched into
``chunk_size`` blocks, so tiny lines do not cost one syscall each.
Backpressure is the kernel's: a producer that outruns its consumer blocks in
``write(2)`` exactly like a process writing to a full FIFO, which is the
behaviour PaSh's eager relays exist to mitigate (§5.2).

The hot path is *bounded-memory streaming*: readers iterate chunk-by-chunk
(:meth:`ChannelReader.iter_chunks` / :meth:`ChannelReader.iter_lines`, which
decodes incrementally and is correct even when a multi-byte UTF-8 sequence is
split across a chunk boundary), and :class:`EagerPump` drains a producer into
a :class:`SpillBuffer` — an in-memory FIFO with a configurable high-water
mark beyond which chunks spill to an unlinked temporary file, the dgsh-tee
behaviour PaSh's eager relays adopt for larger-than-memory streams.  The
pump therefore never blocks the producer *and* never holds more than
``spill_threshold`` bytes in memory.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional, Tuple, Union

from repro.resilience import fault as fault_injection
from repro.resilience.errors import wrap_capacity_error

#: Default framing-chunk size; matches a typical Linux pipe buffer.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Default per-buffer in-memory high-water mark (bytes) before spilling.
DEFAULT_SPILL_THRESHOLD = 1 << 23


class ChannelError(RuntimeError):
    """Raised on invalid channel operations (e.g. writing after close)."""


def encode_lines(lines: Iterable[str]) -> bytes:
    """Frame a stream as newline-terminated UTF-8 bytes."""
    text = "".join(line + "\n" for line in lines)
    return text.encode("utf-8")


def iter_encoded_chunks(lines: Iterable[str], chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Frame a stream as newline-terminated UTF-8 byte chunks.

    The bounded-memory counterpart of :func:`encode_lines`: at most one
    chunk (plus one line) is materialized at a time.
    """
    chunk_size = max(1, chunk_size)
    buffer = bytearray()
    for line in lines:
        buffer += (line + "\n").encode("utf-8")
        if len(buffer) >= chunk_size:
            yield bytes(buffer)
            buffer.clear()
    if buffer:
        yield bytes(buffer)


def decode_lines(data: bytes) -> List[str]:
    """Inverse of :func:`encode_lines` (tolerates a missing final newline)."""
    if not data:
        return []
    text = data.decode("utf-8")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


def iter_decoded_batches(chunks: Iterable[bytes]) -> Iterator[List[str]]:
    """Decode framed chunks into per-chunk line batches, incrementally.

    Splitting happens at the *byte* level on ``\\n`` — which can never occur
    inside a multi-byte UTF-8 sequence — so only complete lines are ever
    decoded and a sequence split across a chunk boundary round-trips
    correctly.  A final line without a trailing newline is still yielded.
    This is the single copy of the split/carry algorithm; the line-wise
    iterators and the workers' batch evaluation all build on it.
    """
    remainder = b""
    for chunk in chunks:
        if not chunk:
            continue
        data = remainder + chunk
        pieces = data.split(b"\n")
        remainder = pieces.pop()
        if pieces:
            yield [piece.decode("utf-8") for piece in pieces]
    if remainder:
        yield [remainder.decode("utf-8")]


def iter_decoded_lines(chunks: Iterable[bytes]) -> Iterator[str]:
    """Decode framed chunks into lines, incrementally (UTF-8-safe)."""
    for batch in iter_decoded_batches(chunks):
        for line in batch:
            yield line


def count_framed_lines(chunk: bytes) -> int:
    """Number of newline-terminated lines contained in a framed chunk."""
    return chunk.count(b"\n")


class Channel:
    """One unidirectional byte channel backed by an OS pipe."""

    def __init__(self, edge_id: int = -1, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.edge_id = edge_id
        self.chunk_size = chunk_size
        self.read_fd, self.write_fd = os.pipe()

    def fds(self) -> List[int]:
        return [self.read_fd, self.write_fd]

    def reader(self) -> "ChannelReader":
        return ChannelReader(self.read_fd, chunk_size=self.chunk_size)

    def writer(self) -> "ChannelWriter":
        return ChannelWriter(self.write_fd, chunk_size=self.chunk_size)

    def close(self) -> None:
        """Close both ends (idempotent; used by the parent after forking).

        Truly idempotent: a second call is a no-op rather than a re-close of
        fd numbers the OS may already have reused for something else.
        """
        fds, self.read_fd, self.write_fd = (self.read_fd, self.write_fd), -1, -1
        for fd in fds:
            if fd < 0:
                continue
            try:
                os.close(fd)
            except OSError:
                pass


class ChannelWriter:
    """Producer end of a channel: chunked, counted line writes."""

    def __init__(self, fd: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.fd = fd
        self.chunk_size = max(1, chunk_size)
        self.bytes_written = 0
        self.lines_written = 0
        self._buffer = bytearray()
        self._closed = False

    def write_line(self, line: str) -> None:
        if self._closed:
            raise ChannelError("cannot write to a closed channel")
        self._buffer += (line + "\n").encode("utf-8")
        self.lines_written += 1
        if len(self._buffer) >= self.chunk_size:
            self.flush()

    def write_lines(self, lines: Iterable[str]) -> None:
        for line in lines:
            self.write_line(line)

    def write_chunk(self, data: bytes) -> None:
        """Forward an already-framed byte chunk (the pass-through hot path)."""
        if self._closed:
            raise ChannelError("cannot write to a closed channel")
        if not data:
            return
        self._buffer += data
        self.lines_written += count_framed_lines(data)
        if len(self._buffer) >= self.chunk_size:
            self.flush()

    def flush(self) -> None:
        view = memoryview(bytes(self._buffer))
        self._buffer.clear()
        while view:
            written = os.write(self.fd, view)
            self.bytes_written += written
            view = view[written:]

    def close(self) -> None:
        """Flush pending bytes and signal EOF to the consumer."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True
            try:
                os.close(self.fd)
            except OSError:
                pass

    def abandon(self) -> None:
        """Close without flushing (used when the consumer is already gone)."""
        self._closed = True
        self._buffer.clear()
        try:
            os.close(self.fd)
        except OSError:
            pass


class ChannelReader:
    """Consumer end of a channel: chunked, counted reads until EOF."""

    def __init__(self, fd: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.fd = fd
        self.chunk_size = max(1, chunk_size)
        self.bytes_read = 0
        self.lines_read = 0
        self._closed = False

    def iter_chunks(self) -> Iterator[bytes]:
        """Yield raw byte chunks until EOF; closes the fd afterwards.

        At most one chunk is held at a time, so a consumer that forwards or
        folds each chunk runs in bounded memory regardless of stream size.
        """
        while True:
            chunk = os.read(self.fd, self.chunk_size)
            if not chunk:
                break
            self.bytes_read += len(chunk)
            fault_injection.fire(fault_injection.CHANNEL_READ, len(chunk))
            yield chunk
        self.close()

    def iter_lines(self) -> Iterator[str]:
        """Yield decoded lines incrementally (UTF-8-safe across chunks)."""
        for line in iter_decoded_lines(self.iter_chunks()):
            self.lines_read += 1
            yield line

    def read_lines(self) -> List[str]:
        """Drain the channel to EOF and return the framed lines."""
        return list(self.iter_lines())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            os.close(self.fd)
        except OSError:
            pass


#: A buffered element: in-memory bytes, or an (offset, length) spill-file ref.
_Token = Union[bytes, Tuple[int, int]]


class SpillBuffer:
    """A FIFO byte-chunk buffer with a bounded in-memory window.

    Chunks are appended by a producer and popped (in order) by a consumer.
    While the in-memory window holds less than ``spill_threshold`` bytes,
    chunks stay in memory; beyond the high-water mark they spill to an
    unlinked temporary file (so crashed processes never leak spill files) and
    are read back transparently when their turn comes.  Appends therefore
    *never block*, which is exactly the dgsh-tee eager-relay contract: the
    producer always makes progress, and memory use stays under the
    configured bound no matter how far the consumer lags.

    Thread-safe for one producer and one consumer.
    """

    def __init__(
        self,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        directory: Optional[str] = None,
    ) -> None:
        self.spill_threshold = max(0, spill_threshold)
        self.directory = directory
        self._condition = threading.Condition()
        self._tokens: Deque[_Token] = deque()
        self._mem_bytes = 0
        self._closed = False
        self._file = None
        self._write_offset = 0
        #: High-water mark actually reached by the in-memory window.
        self.peak_buffered_bytes = 0
        #: Total bytes written to the spill file.
        self.spilled_bytes = 0
        #: Number of chunks that went through the spill file.
        self.spill_events = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently held in memory (excludes spilled chunks)."""
        with self._condition:
            return self._mem_bytes

    # -- producer side -------------------------------------------------------

    def append(self, chunk: bytes) -> None:
        """Enqueue a chunk; spills past the high-water mark, never blocks."""
        if not chunk:
            return
        with self._condition:
            if self._closed:
                raise ChannelError("cannot append to a closed spill buffer")
            if self._mem_bytes + len(chunk) > self.spill_threshold:
                self._spill(chunk)
            else:
                self._tokens.append(bytes(chunk))
                self._mem_bytes += len(chunk)
                if self._mem_bytes > self.peak_buffered_bytes:
                    self.peak_buffered_bytes = self._mem_bytes
            self._condition.notify_all()

    def _spill(self, chunk: bytes) -> None:
        fault_injection.fire(fault_injection.SPILL_WRITE, len(chunk))
        try:
            if self._file is None:
                if self.directory:
                    # A configured directory may not exist yet (service jobs
                    # get per-job directories; users point at scratch
                    # paths): create it here rather than crash at the first
                    # oversized stream.
                    os.makedirs(self.directory, exist_ok=True)
                self._file = tempfile.TemporaryFile(
                    prefix="pash-spill-", dir=self.directory
                )
            self._file.seek(self._write_offset)
            self._file.write(chunk)
        except OSError as exc:
            raise wrap_capacity_error(
                exc, "spill:write", self.directory, len(chunk)
            ) from exc
        self._tokens.append((self._write_offset, len(chunk)))
        self._write_offset += len(chunk)
        self.spilled_bytes += len(chunk)
        self.spill_events += 1

    def close(self) -> None:
        """Signal end-of-stream from the producer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    # -- consumer side -------------------------------------------------------

    def pop(self) -> Optional[bytes]:
        """Dequeue the next chunk in order; None signals end-of-stream.

        Blocks while the buffer is empty and the producer has not closed it.
        """
        with self._condition:
            while not self._tokens and not self._closed:
                self._condition.wait()
            if not self._tokens:
                self._release_file()
                return None
            token = self._tokens.popleft()
            if isinstance(token, tuple):
                offset, length = token
                self._file.seek(offset)
                data = self._file.read(length)
            else:
                data = token
                self._mem_bytes -= len(data)
            if self._closed and not self._tokens:
                self._release_file()
            return data

    def __iter__(self) -> Iterator[bytes]:
        while True:
            chunk = self.pop()
            if chunk is None:
                return
            yield chunk

    def discard(self) -> None:
        """Drop all buffered data and release the spill file."""
        with self._condition:
            self._tokens.clear()
            self._mem_bytes = 0
            self._closed = True
            self._release_file()
            self._condition.notify_all()

    def _release_file(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._file = None


class EagerPump(threading.Thread):
    """Drain a reader into a bounded spill buffer (the engine's eager relay).

    One pump per input edge lets a worker consume all of its inputs at the
    producers' pace: the pump thread keeps the upstream pipe drained (so
    producers never block on an idle consumer, making the engine
    deadlock-free for arbitrary fan-in/fan-out shapes), while the buffer
    keeps at most ``spill_threshold`` bytes in memory and spills the excess
    to disk — PaSh's dgsh-tee eager relay, not an unbounded list.
    """

    def __init__(
        self,
        reader: ChannelReader,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        spill_directory: Optional[str] = None,
    ) -> None:
        super().__init__(daemon=True)
        self.reader = reader
        self.buffer = SpillBuffer(spill_threshold, directory=spill_directory)
        self._error: Optional[BaseException] = None

    def run(self) -> None:  # pragma: no cover - exercised via result()
        try:
            for chunk in self.reader.iter_chunks():
                self.buffer.append(chunk)
        except BaseException as exc:  # noqa: BLE001 - re-raised at consumption
            self._error = exc
        finally:
            self.buffer.close()

    # -- consumer side -------------------------------------------------------

    def iter_chunks(self) -> Iterator[bytes]:
        """Consume buffered chunks as they arrive (concurrent with the pump)."""
        for chunk in self.buffer:
            yield chunk
        self.join()
        if self._error is not None:
            raise self._error

    def iter_lines(self) -> Iterator[str]:
        """Consume decoded lines as they arrive (UTF-8-safe across chunks)."""
        return iter_decoded_lines(self.iter_chunks())

    def result(self) -> List[str]:
        """Join the pump and return the full (remaining) stream as lines."""
        self.join()
        if self._error is not None:
            raise self._error
        return list(iter_decoded_lines(self.buffer))

    # -- accounting ----------------------------------------------------------

    @property
    def peak_buffered_bytes(self) -> int:
        return self.buffer.peak_buffered_bytes

    @property
    def spilled_bytes(self) -> int:
        return self.buffer.spilled_bytes

    @property
    def spill_events(self) -> int:
        return self.buffer.spill_events
