"""The multiprocess DFG scheduler.

Instantiates a :class:`~repro.dfg.graph.DataflowGraph` the way PaSh's runtime
does (§5.2): one OS pipe per internal edge, one worker process per node, all
running concurrently so parallel branches created by the optimizer overlap on
real hardware.  Unlike the original one-``fork``-per-node-per-run design, the
scheduler now draws workers from a persistent :class:`~repro.engine.pool.WorkerPool`
(processes are created once and reused across runs — the dominant cost of
short pipelines was our own spawning) and rationalizes the data plane with
the order-aware dataflow analysis:

* **relay elision** — non-blocking identity relays are not worth a process
  in-engine: the producer is wired pipe-to-pipe to the relay's consumer, and
  the eager buffering the relay stood for is provided by the consumer-side
  pumps (below).  Blocking relays keep their worker — absorb-then-forward is
  observable timing semantics (Fig. 6).
* **pump rationalization** — eager-pump threads are started only on edges
  that are deadlock-relevant: fan-in nodes (aggregators, ``cat`` combiners,
  anything consuming two or more channels sequentially).  Straight-line
  edges are read directly, with kernel-pipe backpressure and zero extra
  copies — see :class:`~repro.engine.workers.DirectSource`.

Graph-input edges (stdin, input files) are resolved against the execution
environment up front and handed to the workers inline; graph-output edges are
collected from the worker reports and delivered through the same
:func:`repro.runtime.executor.deliver_output` path as the interpreter, so the
two backends are observationally identical.
"""

from __future__ import annotations

import itertools
import os
import queue as queue_module
import shutil
import tempfile
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.commands.base import Stream
from repro.commands.registry import standard_registry
from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import FusedStage, RelayNode
from repro.engine.channels import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_SPILL_THRESHOLD,
    Channel,
    iter_decoded_lines,
)
from repro.engine.metrics import EngineMetrics, NodeMetrics
from repro.engine.pool import WorkerPool, resolve_context, shared_pool
from repro.engine.workers import (
    SPILL_PATH_KEY,
    InputPort,
    OutputPort,
    WorkerPlan,
    execute_plan,
)
from repro.obs.metrics import record_engine_run
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.fault import FaultPlan
from repro.runtime.executor import (
    ExecutionEnvironment,
    ExecutionError,
    ExecutionResult,
    deliver_output,
)

#: Distinguishes runs on a shared (pool) report queue.
_run_tokens = itertools.count(1)


@dataclass
class SchedulerOptions:
    """Knobs of the parallel scheduler."""

    #: Exec real host binaries for eligible command nodes instead of the
    #: Python implementations (see workers.host_command_available).
    use_host_commands: bool = False
    #: Channel framing-chunk size in bytes.
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: In-memory high-water mark (bytes) of each stream buffer — eager-pump
    #: windows and graph-output accumulators — beyond which data spills to a
    #: temp file (the dgsh-tee eager-relay behaviour, §5.2).
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    #: Directory for spill files (None = the system temp directory).
    spill_directory: Optional[str] = None
    #: How long to wait for any single worker report before declaring the
    #: run wedged.
    report_timeout_seconds: float = 120.0
    #: Preferred multiprocessing start method.  ``fork`` is cheapest; on
    #: spawn-only platforms the pool still works (descriptors are passed
    #: explicitly and the command registry is re-created in the child).
    start_method: str = "fork"
    #: Serve nodes from a persistent worker pool instead of forking one
    #: fresh process per node per run.
    use_pool: bool = True
    #: Pre-warm the pool to this many workers (None = grow lazily).
    pool_size: Optional[int] = None
    #: When to drain channel inputs through eager-pump threads: ``"fan-in"``
    #: pumps only deadlock-relevant edges, ``"all"`` pumps every edge (the
    #: pre-rationalization behaviour, kept for ablations).
    pump_policy: str = "fan-in"
    #: Bridge non-blocking identity relays pipe-to-pipe instead of running
    #: them as forwarder processes.
    elide_relays: bool = True
    #: Fault-injection plan shipped to every worker of this scheduler's runs
    #: (chaos testing; None = no injection).  Workers receive a pristine
    #: copy per dispatch — fault state is per-process.
    fault_plan: Optional["FaultPlan"] = None


class ParallelScheduler:
    """Executes dataflow graphs with one (pooled) worker process per node."""

    def __init__(
        self,
        environment: Optional[ExecutionEnvironment] = None,
        options: Optional[SchedulerOptions] = None,
        pool: Optional[WorkerPool] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.environment = environment or ExecutionEnvironment()
        self.options = options or SchedulerOptions()
        self._pool = pool
        self.tracer = tracer or NULL_TRACER

    # ------------------------------------------------------------------

    def execute(self, graph: DataflowGraph) -> Tuple[ExecutionResult, EngineMetrics]:
        """Run ``graph``; returns its outputs and the measured metrics.

        Raises :class:`ExecutionError` when any worker fails or the run
        wedges (a worker died without reporting).
        """
        graph.validate()
        started = time.perf_counter()
        metrics = EngineMetrics(backend="parallel")
        result = ExecutionResult()

        if not graph.nodes:
            self._deliver(graph, {}, result)
            metrics.elapsed_seconds = time.perf_counter() - started
            return result, metrics

        context = resolve_context(self.options.start_method)
        pool = self._resolve_pool(context)
        if pool is None and context.get_start_method() != "fork":
            raise ExecutionError(
                "the parallel backend needs the worker pool under the "
                f"{context.get_start_method()!r} start method (channel "
                "descriptors cannot be inherited without fork); re-enable "
                "use_pool or switch to start_method='fork'"
            )

        skipped, heads, tails = self._plan_elisions(graph)
        self._annotate_fusion(graph, metrics)
        metrics.relays_elided = len(skipped)

        # One run at a time per pool: a run's reports travel through the
        # pool's shared queue, so an interleaved run would steal them.
        run_guard = pool.run_lock if pool is not None else nullcontext()
        run_span = self.tracer.span(
            "engine:run",
            "scheduler",
            nodes=len(graph.nodes),
            relays_elided=len(skipped),
        )
        with run_span, run_guard:
            return self._execute_locked(
                graph, metrics, result, context, pool, skipped, heads, tails, started
            )

    def _execute_locked(
        self, graph, metrics, result, context, pool, skipped, heads, tails, started
    ) -> Tuple[ExecutionResult, EngineMetrics]:
        # Grow the pool *before* any of this run's pipes exist: under fork a
        # worker spawned later would inherit the pipes and hold their write
        # ends open forever (consumers would never see EOF).
        pool_growth = 0
        if pool is not None:
            with self.tracer.span("scheduler:spawn", "scheduler") as spawn_span:
                spawn_started = time.perf_counter()
                spawned_before = pool.processes_spawned
                pool.ensure_idle(len(graph.nodes) - len(skipped))
                pool_growth = pool.processes_spawned - spawned_before
                metrics.spawn_seconds += time.perf_counter() - spawn_started
                spawn_span.set(processes_spawned=pool_growth)

        channels = self._open_channels(graph, skipped, tails)
        all_fds = [fd for channel in channels.values() for fd in channel.fds()]
        # All of this run's spill files (pump overflow, oversized graph
        # outputs) live in one run-scoped directory, removed unconditionally
        # on the way out — so even a worker killed before reporting cannot
        # leak its spill file.
        if self.options.spill_directory:
            os.makedirs(self.options.spill_directory, exist_ok=True)
        run_spill_directory = tempfile.mkdtemp(
            prefix="pash-run-spill-", dir=self.options.spill_directory
        )
        token = next(_run_tokens)
        pooled: Dict[int, object] = {}  # node_id -> PoolWorker
        reports: Dict[int, dict] = {}
        try:
            # Captured before the plan span opens: worker spans parent under
            # the enclosing engine:run span, not under scheduler:plan (their
            # execution long outlives the planning interval).
            worker_trace = self.tracer.context()
            with self.tracer.span("scheduler:plan", "scheduler"):
                plans = [
                    self._plan(
                        node_id, graph, channels, all_fds, run_spill_directory,
                        heads, tails, token, worker_trace,
                    )
                    for node_id in self._topo_ids(graph)
                    if node_id not in skipped
                ]
            self._count_edge_modes(plans, metrics)

            report_queue = pool.report_queue if pool is not None else context.Queue()
            processes = []
            spawn_started = time.perf_counter()
            dispatch_span = self.tracer.span(
                "scheduler:dispatch", "scheduler", plans=len(plans)
            )
            try:
                with dispatch_span:
                    for plan in plans:
                        if pool is not None:
                            worker = pool.dispatch(plan)
                            if worker is not None:
                                pooled[plan.node.node_id] = worker
                                processes.append((plan.node, worker.process))
                                continue
                        # Dedicated fork: the plan cannot travel to a persistent
                        # worker (unpicklable custom registry) or pooling is off.
                        # The child inherits every channel fd and closes the ones
                        # it does not own.
                        if context.get_start_method() != "fork":
                            raise ExecutionError(
                                f"node {plan.node.label()} carries a command "
                                "registry that cannot be pickled to a pool worker, "
                                "and the fallback fork path is unavailable under "
                                f"the {context.get_start_method()!r} start method"
                            )
                        process = context.Process(
                            target=execute_plan,
                            args=(plan, report_queue),
                            name=f"pash-node-{plan.node.node_id}",
                        )
                        process.start()
                        metrics.processes_spawned += 1
                        processes.append((plan.node, process))
            finally:
                metrics.spawn_seconds += time.perf_counter() - spawn_started
                metrics.processes_spawned += pool_growth
                metrics.processes_reused += max(0, len(pooled) - pool_growth)
                # The parent holds no edge: drop every channel fd so that EOF
                # propagation is entirely between the workers.
                for channel in channels.values():
                    channel.close()

            with self.tracer.span("scheduler:collect", "scheduler"):
                reports = self._collect_reports(
                    report_queue, processes, len(plans), token
                )
            for node, process in processes:
                if node.node_id in pooled:
                    continue  # pool workers stay alive by design
                process.join(timeout=self.options.report_timeout_seconds)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()

            failures = [report for report in reports.values() if report["error"]]
            if failures:
                detail = "; ".join(
                    f"{report['label']}: {report['error']}" for report in failures
                )
                raise ExecutionError(f"{len(failures)} worker(s) failed: {detail}")

            edge_values: Dict[int, Stream] = {}
            for report in reports.values():
                for edge_id, value in report["outputs"].items():
                    edge_values[edge_id] = self._restore_output(value)
                for span in report.get("spans") or ():
                    # Worker-side spans arrive through the report queue; the
                    # worker cannot know whether its process was a fresh fork
                    # or a pool reuse, so attribution lands here.
                    span.set(reused_worker=report["node_id"] in pooled)
                    self.tracer.record(span)
                metrics.nodes.append(
                    NodeMetrics(
                        node_id=report["node_id"],
                        label=report["label"],
                        kind=report["kind"],
                        pid=report["pid"],
                        wall_seconds=report["wall_seconds"],
                        compute_seconds=report.get("compute_seconds", 0.0),
                        bytes_in=report["bytes_in"],
                        bytes_out=report["bytes_out"],
                        lines_in=report["lines_in"],
                        lines_out=report["lines_out"],
                        host_command=report["host_command"],
                        reused_worker=report["node_id"] in pooled,
                        peak_buffered_bytes=report.get("peak_buffered_bytes", 0),
                        spilled_bytes=report.get("spilled_bytes", 0),
                        spill_events=report.get("spill_events", 0),
                    )
                )
            metrics.nodes.sort(key=lambda node: node.node_id)
        except Exception:
            for channel in channels.values():
                channel.close()
            if pool is not None:
                # Flush reports a wedged or abandoned worker may still queue.
                pool.drain_stale_reports()
            raise
        finally:
            if pool is not None:
                # Exactly one hand-back per dispatched worker: reported ones
                # return to the idle set, the rest may be wedged mid-node and
                # are dropped (the pool re-grows lazily next run).
                for node_id, worker in pooled.items():
                    if node_id in reports:
                        pool.release(worker)
                    else:
                        pool.discard(worker)
            shutil.rmtree(run_spill_directory, ignore_errors=True)

        self._deliver(graph, edge_values, result)
        result.edge_values.update(edge_values)
        metrics.elapsed_seconds = time.perf_counter() - started
        record_engine_run(metrics, backend="parallel")
        return result, metrics

    # ------------------------------------------------------------------

    def _resolve_pool(self, context) -> Optional[WorkerPool]:
        if not self.options.use_pool:
            return None
        pool = self._pool
        if pool is None or pool.closed:
            pool = shared_pool(context.get_start_method())
        if self.options.pool_size:
            pool.prewarm(self.options.pool_size)
        return pool

    @staticmethod
    def _topo_ids(graph: DataflowGraph) -> List[int]:
        return [node.node_id for node in graph.topological_order()]

    @staticmethod
    def _annotate_fusion(graph: DataflowGraph, metrics: EngineMetrics) -> None:
        for node in graph.nodes.values():
            if isinstance(node, FusedStage):
                metrics.stages_fused += 1
                metrics.commands_fused += len(node.nodes)

    # -- relay elision -------------------------------------------------------

    def _plan_elisions(self, graph: DataflowGraph):
        """Bridge non-blocking identity relays out of the process plan.

        Returns ``(skipped, heads, tails)``: the node ids of elided relays
        plus single-step edge aliases.  ``heads`` maps a relay's output edge
        to its input edge (follow transitively to find where a consumer's
        stream really comes from); ``tails`` is the inverse (where a
        producer's stream really goes).  A relay whose stream would end up
        with neither a producing nor a consuming worker (graph input straight
        to graph output) keeps its process — something must move the bytes.
        """
        skipped: Dict[int, RelayNode] = {}
        heads: Dict[int, int] = {}
        tails: Dict[int, int] = {}
        if not self.options.elide_relays:
            return skipped, heads, tails

        for node_id in sorted(graph.nodes):
            node = graph.nodes[node_id]
            if not isinstance(node, RelayNode) or node.blocking:
                continue
            if len(node.inputs) != 1 or len(node.outputs) != 1:
                continue
            into, out = node.inputs[0], node.outputs[0]
            head_edge = graph.edge(self._follow(heads, into))
            tail_edge = graph.edge(self._follow(tails, out))
            producer_gone = head_edge.source is None or head_edge.source in skipped
            consumer_gone = tail_edge.target is None or tail_edge.target in skipped
            if producer_gone and consumer_gone:
                continue  # keep one mover for a source-to-sink stream
            skipped[node_id] = node
            heads[out] = into
            tails[into] = out
        return skipped, heads, tails

    @staticmethod
    def _follow(mapping: Dict[int, int], edge_id: int) -> int:
        while edge_id in mapping:
            edge_id = mapping[edge_id]
        return edge_id

    def _open_channels(
        self, graph: DataflowGraph, skipped: Dict[int, RelayNode], tails: Dict[int, int]
    ) -> Dict[int, Channel]:
        """One OS pipe per *stream*: elided relays do not split an edge in two.

        Channels are keyed by the stream's head edge (the producing worker's
        output edge); consumers look their read end up by following their
        input edge back to that head.
        """
        channels: Dict[int, Channel] = {}
        for edge_id in sorted(graph.edges):
            edge = graph.edges[edge_id]
            if edge.source is None or edge.source in skipped:
                continue
            tail = graph.edge(self._follow(tails, edge_id))
            if tail.target is None:
                continue
            channels[edge_id] = Channel(edge_id, chunk_size=self.options.chunk_size)
        return channels

    # -- planning ------------------------------------------------------------

    def _plan(
        self,
        node_id: int,
        graph: DataflowGraph,
        channels: Dict[int, Channel],
        all_fds: List[int],
        spill_directory: str,
        heads: Dict[int, int],
        tails: Dict[int, int],
        token: int,
        trace=None,
    ) -> WorkerPlan:
        node = graph.node(node_id)
        inputs = []
        for edge_id in node.inputs:
            head = self._follow(heads, edge_id)
            if head in channels:
                inputs.append(InputPort(edge_id, fd=channels[head].read_fd))
            else:
                inputs.append(self._input_port(edge_id, graph.edge(head)))
        outputs = []
        for edge_id in node.outputs:
            if edge_id in channels:
                outputs.append(OutputPort(edge_id, fd=channels[edge_id].write_fd))
            else:
                # Graph output (possibly through elided relays): report the
                # stream under the final output edge's id so delivery finds it.
                outputs.append(OutputPort(self._follow(tails, edge_id)))
        registry = self.environment.registry
        if registry is standard_registry():
            # The standard registry is re-created in the worker (cheap, cached
            # per process); not shipping it keeps plans small and makes them
            # picklable under every start method.
            registry = None
        return WorkerPlan(
            node=node,
            inputs=inputs,
            outputs=outputs,
            registry=registry,
            use_host_commands=self.options.use_host_commands,
            chunk_size=self.options.chunk_size,
            spill_threshold=self.options.spill_threshold,
            spill_directory=spill_directory,
            close_fds=all_fds,
            pump_policy=self.options.pump_policy,
            run_token=token,
            trace=trace,
            faults=self.options.fault_plan,
        )

    @staticmethod
    def _count_edge_modes(plans: List[WorkerPlan], metrics: EngineMetrics) -> None:
        for plan in plans:
            channel_inputs = sum(1 for port in plan.inputs if port.fd is not None)
            if channel_inputs == 0:
                continue
            if plan.pump_policy == "all" or channel_inputs >= 2:
                metrics.edges_buffered += channel_inputs
            else:
                metrics.edges_direct += channel_inputs

    def _resolve_input(self, edge: Edge) -> Stream:
        """Materialize a graph-input edge from the environment."""
        if edge.kind is EdgeKind.STDIN:
            return list(self.environment.stdin)
        if edge.kind is EdgeKind.FILE:
            try:
                return self.environment.filesystem.read(edge.name or "")
            except FileNotFoundError as exc:
                raise ExecutionError(str(exc)) from exc
        # A dangling pipe input (should not occur in valid graphs).
        return []

    def _input_port(self, edge_id: int, edge: Edge) -> InputPort:
        """A graph-input port: a streamable on-disk path when possible.

        Files that exist only on the real filesystem (the VFS fallback) are
        handed to the worker as paths, so the consuming process streams them
        chunk-by-chunk instead of the parent materializing every line.
        """
        if edge.kind is EdgeKind.FILE and edge.name:
            path = self.environment.filesystem.real_path(edge.name)
            if path is not None:
                # Resolved here, against *this* process's cwd: a persistent
                # pool worker may have been spawned under a different one.
                return InputPort(edge_id, path=os.path.abspath(path))
        return InputPort(edge_id, data=self._resolve_input(edge))

    def _restore_output(self, value) -> Stream:
        """Inline report outputs pass through; spilled ones stream off disk."""
        if isinstance(value, dict) and SPILL_PATH_KEY in value:
            path = value[SPILL_PATH_KEY]
            try:
                with open(path, "rb") as handle:
                    return list(
                        iter_decoded_lines(
                            iter(lambda: handle.read(self.options.chunk_size), b"")
                        )
                    )
            finally:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        return value

    # -- report collection ---------------------------------------------------

    def _collect_reports(
        self, report_queue, processes, expected: int, token: int
    ) -> Dict[int, dict]:
        """Gather one report per worker, failing fast on dead workers.

        A worker killed by a signal (SIGKILL, OOM) never reaches its
        ``finally`` block, so its report never arrives; waiting for the full
        timeout would hang the run for minutes on an already-observable
        death.  Poll in short slices and check the process table between
        them.  Reports carrying a different run token are leftovers of an
        abandoned earlier run on a shared pool queue and are dropped.
        """
        reports: Dict[int, dict] = {}
        deadline = time.monotonic() + self.options.report_timeout_seconds

        def take(block_seconds: float) -> bool:
            report = report_queue.get(timeout=block_seconds)
            if report.get("token", token) != token:
                return False
            reports[report["node_id"]] = report
            return True

        while len(reports) < expected:
            try:
                take(0.25)
                continue
            except queue_module.Empty:
                pass
            dead = [
                (node, process)
                for node, process in processes
                if node.node_id not in reports and not process.is_alive()
            ]
            if dead:
                # Grace period: a report written just before exit may still
                # be in flight through the queue's pipe.
                try:
                    while len(reports) < expected:
                        take(1.0)
                except queue_module.Empty:
                    pass
                silent = [
                    (node, process)
                    for node, process in dead
                    if node.node_id not in reports
                ]
                if silent:
                    self._terminate(processes, reports)
                    detail = "; ".join(
                        f"{node.label()} (exit code {process.exitcode})"
                        for node, process in silent
                    )
                    raise ExecutionError(f"worker(s) died without reporting: {detail}")
            if time.monotonic() > deadline:
                self._terminate(processes, reports)
                missing = expected - len(reports)
                raise ExecutionError(
                    f"parallel execution wedged: {missing} worker(s) never reported "
                    f"(timeout {self.options.report_timeout_seconds}s)"
                )
        return reports

    @staticmethod
    def _terminate(processes, reports: Dict[int, dict]) -> None:
        """Stop workers still stuck in this run (reported ones are done)."""
        for node, process in processes:
            if node.node_id not in reports and process.is_alive():
                process.terminate()

    # -- delivery ------------------------------------------------------------

    def _deliver(
        self,
        graph: DataflowGraph,
        edge_values: Dict[int, Stream],
        result: ExecutionResult,
    ) -> None:
        for edge in graph.output_edges():
            stream = edge_values.get(edge.edge_id)
            if stream is None:
                stream = self._resolve_input(edge) if edge.source is None else []
            deliver_output(edge, stream, result, self.environment.filesystem)


def execute_graph_parallel(
    graph: DataflowGraph,
    environment: Optional[ExecutionEnvironment] = None,
    options: Optional[SchedulerOptions] = None,
    pool: Optional[WorkerPool] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[ExecutionResult, EngineMetrics]:
    """Convenience wrapper: execute ``graph`` on the parallel scheduler."""
    return ParallelScheduler(environment, options, pool=pool, tracer=tracer).execute(graph)
