"""The multiprocess DFG scheduler.

Instantiates a :class:`~repro.dfg.graph.DataflowGraph` the way PaSh's runtime
does (§5.2): one OS pipe per internal edge, one process per node, launched in
topological order, with the parent waiting only for the graph's output
producers (reports, here).  Unlike the in-process executor — which evaluates
nodes one at a time — every node of the graph runs concurrently, so parallel
branches created by the optimizer overlap on real hardware.

Graph-input edges (stdin, input files) are resolved against the execution
environment up front and handed to the workers inline; graph-output edges are
collected from the worker reports and delivered through the same
:func:`repro.runtime.executor.deliver_output` path as the interpreter, so the
two backends are observationally identical.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.commands.base import Stream
from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.engine.channels import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_SPILL_THRESHOLD,
    Channel,
    iter_decoded_lines,
)
from repro.engine.metrics import EngineMetrics, NodeMetrics
from repro.engine.workers import (
    SPILL_PATH_KEY,
    InputPort,
    OutputPort,
    WorkerPlan,
    execute_plan,
)
from repro.runtime.executor import (
    ExecutionEnvironment,
    ExecutionError,
    ExecutionResult,
    deliver_output,
)


@dataclass
class SchedulerOptions:
    """Knobs of the parallel scheduler."""

    #: Exec real host binaries for eligible command nodes instead of the
    #: Python implementations (see workers.host_command_available).
    use_host_commands: bool = False
    #: Channel framing-chunk size in bytes.
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: In-memory high-water mark (bytes) of each stream buffer — eager-pump
    #: windows and graph-output accumulators — beyond which data spills to a
    #: temp file (the dgsh-tee eager-relay behaviour, §5.2).
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    #: Directory for spill files (None = the system temp directory).
    spill_directory: Optional[str] = None
    #: How long to wait for any single worker report before declaring the
    #: run wedged.
    report_timeout_seconds: float = 120.0
    #: Preferred multiprocessing start method.  ``fork`` keeps channel file
    #: descriptors and the (possibly customized) command registry intact;
    #: platforms without it fall back to the default method.
    start_method: str = "fork"


class ParallelScheduler:
    """Executes dataflow graphs with one worker process per node."""

    def __init__(
        self,
        environment: Optional[ExecutionEnvironment] = None,
        options: Optional[SchedulerOptions] = None,
    ) -> None:
        self.environment = environment or ExecutionEnvironment()
        self.options = options or SchedulerOptions()

    # ------------------------------------------------------------------

    def execute(self, graph: DataflowGraph) -> Tuple[ExecutionResult, EngineMetrics]:
        """Run ``graph``; returns its outputs and the measured metrics.

        Raises :class:`ExecutionError` when any worker fails or the run
        wedges (a worker died without reporting).
        """
        graph.validate()
        started = time.perf_counter()
        metrics = EngineMetrics(backend="parallel")
        result = ExecutionResult()

        if not graph.nodes:
            self._deliver(graph, {}, result)
            metrics.elapsed_seconds = time.perf_counter() - started
            return result, metrics

        context = self._context()
        channels = self._open_channels(graph)
        all_fds = [fd for channel in channels.values() for fd in channel.fds()]
        # All of this run's spill files (pump overflow, oversized graph
        # outputs) live in one run-scoped directory, removed unconditionally
        # on the way out — so even a worker killed before reporting cannot
        # leak its spill file.
        run_spill_directory = tempfile.mkdtemp(
            prefix="pash-run-spill-", dir=self.options.spill_directory
        )
        try:
            plans = [
                self._plan(node_id, graph, channels, all_fds, run_spill_directory)
                for node_id in self._topo_ids(graph)
            ]

            report_queue = context.Queue()
            processes = []
            try:
                for plan in plans:
                    process = context.Process(
                        target=execute_plan,
                        args=(plan, report_queue),
                        name=f"pash-node-{plan.node.node_id}",
                    )
                    process.start()
                    processes.append((plan.node, process))
            finally:
                # The parent holds no edge: drop every channel fd so that EOF
                # propagation is entirely between the workers.
                for channel in channels.values():
                    channel.close()

            reports = self._collect_reports(report_queue, processes, len(plans))
            for _, process in processes:
                process.join(timeout=self.options.report_timeout_seconds)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()

            failures = [report for report in reports.values() if report["error"]]
            if failures:
                detail = "; ".join(
                    f"{report['label']}: {report['error']}" for report in failures
                )
                raise ExecutionError(f"{len(failures)} worker(s) failed: {detail}")

            edge_values: Dict[int, Stream] = {}
            for report in reports.values():
                for edge_id, value in report["outputs"].items():
                    edge_values[edge_id] = self._restore_output(value)
                metrics.nodes.append(
                    NodeMetrics(
                        node_id=report["node_id"],
                        label=report["label"],
                        kind=report["kind"],
                        pid=report["pid"],
                        wall_seconds=report["wall_seconds"],
                        bytes_in=report["bytes_in"],
                        bytes_out=report["bytes_out"],
                        lines_in=report["lines_in"],
                        lines_out=report["lines_out"],
                        host_command=report["host_command"],
                        peak_buffered_bytes=report.get("peak_buffered_bytes", 0),
                        spilled_bytes=report.get("spilled_bytes", 0),
                        spill_events=report.get("spill_events", 0),
                    )
                )
            metrics.nodes.sort(key=lambda node: node.node_id)
        except Exception:
            for channel in channels.values():
                channel.close()
            raise
        finally:
            shutil.rmtree(run_spill_directory, ignore_errors=True)

        self._deliver(graph, edge_values, result)
        result.edge_values.update(edge_values)
        metrics.elapsed_seconds = time.perf_counter() - started
        return result, metrics

    # ------------------------------------------------------------------

    def _context(self):
        try:
            return multiprocessing.get_context(self.options.start_method)
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context()

    @staticmethod
    def _topo_ids(graph: DataflowGraph) -> List[int]:
        return [node.node_id for node in graph.topological_order()]

    def _open_channels(self, graph: DataflowGraph) -> Dict[int, Channel]:
        """One OS pipe per internal edge (produced and consumed in-graph)."""
        channels: Dict[int, Channel] = {}
        for edge_id in sorted(graph.edges):
            edge = graph.edges[edge_id]
            if edge.source is not None and edge.target is not None:
                channels[edge_id] = Channel(edge_id, chunk_size=self.options.chunk_size)
        return channels

    def _plan(
        self,
        node_id: int,
        graph: DataflowGraph,
        channels: Dict[int, Channel],
        all_fds: List[int],
        spill_directory: str,
    ) -> WorkerPlan:
        node = graph.node(node_id)
        inputs = []
        for edge_id in node.inputs:
            if edge_id in channels:
                inputs.append(InputPort(edge_id, fd=channels[edge_id].read_fd))
            else:
                inputs.append(self._input_port(edge_id, graph.edge(edge_id)))
        outputs = []
        for edge_id in node.outputs:
            if edge_id in channels:
                outputs.append(OutputPort(edge_id, fd=channels[edge_id].write_fd))
            else:
                outputs.append(OutputPort(edge_id))
        return WorkerPlan(
            node=node,
            inputs=inputs,
            outputs=outputs,
            registry=self.environment.registry,
            use_host_commands=self.options.use_host_commands,
            chunk_size=self.options.chunk_size,
            spill_threshold=self.options.spill_threshold,
            spill_directory=spill_directory,
            close_fds=all_fds,
        )

    def _resolve_input(self, edge: Edge) -> Stream:
        """Materialize a graph-input edge from the environment."""
        if edge.kind is EdgeKind.STDIN:
            return list(self.environment.stdin)
        if edge.kind is EdgeKind.FILE:
            try:
                return self.environment.filesystem.read(edge.name or "")
            except FileNotFoundError as exc:
                raise ExecutionError(str(exc)) from exc
        # A dangling pipe input (should not occur in valid graphs).
        return []

    def _input_port(self, edge_id: int, edge: Edge) -> InputPort:
        """A graph-input port: a streamable on-disk path when possible.

        Files that exist only on the real filesystem (the VFS fallback) are
        handed to the worker as paths, so the consuming process streams them
        chunk-by-chunk instead of the parent materializing every line.
        """
        if edge.kind is EdgeKind.FILE and edge.name:
            path = self.environment.filesystem.real_path(edge.name)
            if path is not None:
                return InputPort(edge_id, path=path)
        return InputPort(edge_id, data=self._resolve_input(edge))

    def _restore_output(self, value) -> Stream:
        """Inline report outputs pass through; spilled ones stream off disk."""
        if isinstance(value, dict) and SPILL_PATH_KEY in value:
            path = value[SPILL_PATH_KEY]
            try:
                with open(path, "rb") as handle:
                    return list(
                        iter_decoded_lines(
                            iter(lambda: handle.read(self.options.chunk_size), b"")
                        )
                    )
            finally:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        return value

    def _collect_reports(self, report_queue, processes, expected: int) -> Dict[int, dict]:
        """Gather one report per worker, failing fast on dead workers.

        A worker killed by a signal (SIGKILL, OOM) never reaches its
        ``finally`` block, so its report never arrives; waiting for the full
        timeout would hang the run for minutes on an already-observable
        death.  Poll in short slices and check the process table between
        them.
        """
        reports: Dict[int, dict] = {}
        deadline = time.monotonic() + self.options.report_timeout_seconds
        while len(reports) < expected:
            try:
                report = report_queue.get(timeout=0.25)
                reports[report["node_id"]] = report
                continue
            except queue_module.Empty:
                pass
            dead = [
                (node, process)
                for node, process in processes
                if node.node_id not in reports and not process.is_alive()
            ]
            if dead:
                # Grace period: a report written just before exit may still
                # be in flight through the queue's pipe.
                try:
                    while len(reports) < expected:
                        report = report_queue.get(timeout=1.0)
                        reports[report["node_id"]] = report
                except queue_module.Empty:
                    pass
                silent = [
                    (node, process)
                    for node, process in dead
                    if node.node_id not in reports
                ]
                if silent:
                    self._terminate(processes)
                    detail = "; ".join(
                        f"{node.label()} (exit code {process.exitcode})"
                        for node, process in silent
                    )
                    raise ExecutionError(f"worker(s) died without reporting: {detail}")
            if time.monotonic() > deadline:
                self._terminate(processes)
                missing = expected - len(reports)
                raise ExecutionError(
                    f"parallel execution wedged: {missing} worker(s) never reported "
                    f"(timeout {self.options.report_timeout_seconds}s)"
                )
        return reports

    @staticmethod
    def _terminate(processes) -> None:
        for _, process in processes:
            if process.is_alive():
                process.terminate()

    def _deliver(
        self, graph: DataflowGraph, edge_values: Dict[int, Stream], result: ExecutionResult
    ) -> None:
        for edge in graph.output_edges():
            stream = edge_values.get(edge.edge_id)
            if stream is None:
                stream = self._resolve_input(edge) if edge.source is None else []
            deliver_output(edge, stream, result, self.environment.filesystem)


def execute_graph_parallel(
    graph: DataflowGraph,
    environment: Optional[ExecutionEnvironment] = None,
    options: Optional[SchedulerOptions] = None,
) -> Tuple[ExecutionResult, EngineMetrics]:
    """Convenience wrapper: execute ``graph`` on the parallel scheduler."""
    return ParallelScheduler(environment, options).execute(graph)
