"""The unified execution API: ``repro.engine.run(graph, backend=...)``.

Every way this reproduction can execute a dataflow graph sits behind one
registry:

* ``interpreter`` — the single-threaded in-process oracle
  (:class:`repro.runtime.executor.DFGExecutor`),
* ``parallel`` — the multiprocess scheduler with OS-pipe channels
  (:class:`repro.engine.scheduler.ParallelScheduler`); its data plane
  streams chunk-by-chunk in bounded memory, spilling eager buffers to disk
  past :class:`~repro.engine.scheduler.SchedulerOptions`'s
  ``spill_threshold`` (see :mod:`repro.engine.channels`),
* ``shell`` — emit the Fig. 3-style script and run it under a real POSIX
  shell, then fold the results back into the virtual filesystem.

The CLI, the evaluation harness, benchmarks, and tests all select backends
through the ``repro.api`` front door (``CompiledScript.execute`` /
``repro.api.run``), which resolves names against this registry — so adding a
backend (e.g. a distributed one) is one ``register_backend`` call.
:func:`run_script` remains as a deprecated shim over ``repro.api.run``.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.backend.shell_emitter import EmitterOptions, emit_parallel_script
from repro.commands.base import Stream
from repro.dfg.edges import EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.engine.channels import decode_lines
from repro.engine.metrics import EngineMetrics
from repro.engine.pool import WorkerPool
from repro.engine.scheduler import ParallelScheduler, SchedulerOptions
from repro.obs.tracer import SpanRecord, Tracer
from repro.runtime.executor import (
    DFGExecutor,
    ExecutionEnvironment,
    ExecutionError,
    ExecutionResult,
)
from repro.transform.pipeline import ParallelizationConfig


@dataclass
class EngineResult:
    """Outcome of one engine invocation (any backend)."""

    backend: str
    stdout: Stream = field(default_factory=list)
    files: Dict[str, Stream] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    metrics: EngineMetrics = field(default_factory=EngineMetrics)
    #: Spans recorded during this invocation (empty unless tracing is on).
    spans: List[SpanRecord] = field(default_factory=list)

    def output_of(self, name: str) -> Stream:
        """Stream written to the named output file."""
        return self.files.get(name, [])

    def absorb(self, other: "EngineResult") -> None:
        """Fold a later region's result in (multi-statement scripts)."""
        self.stdout.extend(other.stdout)
        self.files.update(other.files)
        self.elapsed_seconds += other.elapsed_seconds
        self.metrics.merge(other.metrics)
        self.spans.extend(other.spans)


class ExecutionBackend:
    """One way of executing a dataflow graph."""

    name = "abstract"

    def execute(self, graph: DataflowGraph, environment: ExecutionEnvironment) -> EngineResult:
        raise NotImplementedError

    def _wrap(self, result: ExecutionResult, elapsed: float, metrics: EngineMetrics) -> EngineResult:
        metrics.backend = self.name
        if metrics.elapsed_seconds == 0.0:
            metrics.elapsed_seconds = elapsed
        return EngineResult(
            backend=self.name,
            stdout=list(result.stdout),
            files={name: list(lines) for name, lines in result.files.items()},
            elapsed_seconds=elapsed,
            metrics=metrics,
        )


class InterpreterBackend(ExecutionBackend):
    """The sequential in-process executor (the correctness oracle)."""

    name = "interpreter"

    def execute(self, graph: DataflowGraph, environment: ExecutionEnvironment) -> EngineResult:
        started = time.perf_counter()
        result = DFGExecutor(environment).execute(graph)
        elapsed = time.perf_counter() - started
        return self._wrap(result, elapsed, EngineMetrics())


class ParallelBackend(ExecutionBackend):
    """The multiprocess scheduler: one (pooled) worker process per node.

    Constructor keywords become :class:`SchedulerOptions` fields, so
    ``engine.run(graph, backend="parallel", spill_threshold=1 << 20)``
    bounds every stream buffer at 1 MiB (excess spills to disk) and
    ``chunk_size=...`` sets the framing granularity.  ``pool`` pins the
    backend to a specific :class:`~repro.engine.pool.WorkerPool` (a ``with
    Pash(...)`` session passes its private pool here); without one the
    scheduler uses the process-wide shared pool, so process startup is
    amortized across runs either way.  The run's
    :class:`~repro.engine.metrics.EngineMetrics` report the observed
    ``processes_spawned`` / ``processes_reused`` /
    ``peak_buffered_bytes`` / ``total_spilled_bytes``.
    """

    name = "parallel"

    def __init__(
        self,
        options: Optional[SchedulerOptions] = None,
        pool: Optional["WorkerPool"] = None,
        tracer: Optional[Tracer] = None,
        **overrides,
    ) -> None:
        if options is None:
            options = SchedulerOptions(**overrides)
        elif overrides:
            # A config-derived options object plus loose keywords (e.g.
            # ``spill_threshold=...`` on CompiledScript.execute): the
            # explicit keywords win field-by-field.
            options = dataclasses.replace(options, **overrides)
        self.options = options
        self.pool = pool
        self.tracer = tracer

    def execute(self, graph: DataflowGraph, environment: ExecutionEnvironment) -> EngineResult:
        started = time.perf_counter()
        scheduler = ParallelScheduler(
            environment, self.options, pool=self.pool, tracer=self.tracer
        )
        mark = scheduler.tracer.mark()
        result, metrics = scheduler.execute(graph)
        elapsed = time.perf_counter() - started
        wrapped = self._wrap(result, elapsed, metrics)
        wrapped.spans = scheduler.tracer.since(mark)
        return wrapped


class ShellBackend(ExecutionBackend):
    """Emit the parallel script and run it under a real POSIX shell.

    The environment's virtual files are materialized into a scratch
    directory, the script runs there (``LC_ALL=C`` for stable collation),
    and the graph's output files are read back into the environment, making
    the backend byte-comparable with the in-process ones.
    """

    name = "shell"

    def __init__(self, shell: str = "sh", timeout_seconds: float = 120.0) -> None:
        self.shell = shell
        self.timeout_seconds = timeout_seconds

    def execute(self, graph: DataflowGraph, environment: ExecutionEnvironment) -> EngineResult:
        started = time.perf_counter()
        result = ExecutionResult()
        with tempfile.TemporaryDirectory(prefix="pash_engine_") as scratch:
            self._materialize(graph, environment, scratch)
            # Background jobs get /dev/null as stdin under POSIX sh, so the
            # environment's stdin is passed as a real file instead.
            stdin_path = os.path.join(scratch, "pash_stdin.txt")
            with open(stdin_path, "w") as handle:
                for line in environment.stdin:
                    handle.write(line + "\n")
            script = emit_parallel_script(
                graph, EmitterOptions(fifo_directory=scratch, stdin_path=stdin_path)
            )
            stdout, returncode, stderr = self._run_shell(script, scratch)
            if returncode != 0:
                raise ExecutionError(f"emitted script exited {returncode}: {stderr.strip()}")
            result.stdout.extend(decode_lines(stdout.encode("utf-8")))
            self._read_back(graph, environment, scratch, result)
        elapsed = time.perf_counter() - started
        return self._wrap(result, elapsed, EngineMetrics())

    def _run_shell(self, script: str, scratch: str):
        """Run the emitted script in its own process group with a real timeout.

        The script launches every node as a background job; on a wedge those
        grandchildren keep the captured stdout pipe open, so killing only the
        shell would leave ``communicate`` blocked forever.  A new session +
        ``killpg`` takes the whole graph down, and the timeout surfaces as
        :class:`ExecutionError` like every other backend failure.
        """
        process = subprocess.Popen(
            [self.shell, "-c", script],
            stdin=subprocess.DEVNULL,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=scratch,
            env=dict(os.environ, LC_ALL="C"),
            start_new_session=True,
        )
        try:
            stdout, stderr = process.communicate(timeout=self.timeout_seconds)
        except subprocess.TimeoutExpired:
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - race with exit
                pass
            process.communicate()
            raise ExecutionError(
                f"emitted script timed out after {self.timeout_seconds}s"
            ) from None
        return stdout, process.returncode, stderr

    @staticmethod
    def _path(scratch: str, name: str) -> str:
        return name if os.path.isabs(name) else os.path.join(scratch, name)

    def _materialize(
        self, graph: DataflowGraph, environment: ExecutionEnvironment, scratch: str
    ) -> None:
        """Write the script's input files into the scratch directory.

        Covers every in-memory virtual file plus every FILE edge the graph
        reads (those may resolve through the VFS's real-filesystem fallback).
        A missing input raises here: the emitted script would otherwise hang
        — its producer dies before opening its output FIFO and the consumer
        blocks in open(2) forever.
        """
        in_memory = set(environment.filesystem.names())
        for edge in graph.input_edges():
            if edge.kind is EdgeKind.FILE and edge.name and os.path.isabs(edge.name):
                # Absolute inputs are read from the real filesystem by the
                # script itself; an in-memory entry under that name cannot be
                # materialized without clobbering the user's file.
                if edge.name in in_memory:
                    raise ExecutionError(
                        f"cannot materialize in-memory virtual file {edge.name!r} "
                        "for the shell backend: its absolute path would "
                        "overwrite a real file"
                    )
                if not os.path.exists(edge.name):
                    # Missing inputs must fail here, not hang the script.
                    raise ExecutionError(f"input file {edge.name!r} does not exist")
        # Only relative names are written (into the scratch dir): absolute
        # VFS entries must never escape onto the real filesystem.
        names = {name for name in in_memory if not os.path.isabs(name)}
        for edge in graph.input_edges():
            if edge.kind is EdgeKind.FILE and edge.name and not os.path.isabs(edge.name):
                names.add(edge.name)
        # Append (`>>`) targets need their prior content in the scratch dir
        # too — the script must extend it, never start from an empty file.
        for edge in graph.output_edges():
            if edge.kind is not EdgeKind.FILE or not edge.name:
                continue
            if os.path.isabs(edge.name):
                # The emitted script would redirect straight to the real
                # path, escaping the hermetic scratch sandbox the in-memory
                # backends honour.
                raise ExecutionError(
                    f"shell backend refuses absolute output path {edge.name!r}: "
                    "it would write outside the scratch directory (use a "
                    "relative path or the interpreter/parallel backend)"
                )
            if edge.append and environment.filesystem.exists(edge.name):
                names.add(edge.name)
        for name in sorted(names):
            try:
                lines = environment.filesystem.read(name)
            except FileNotFoundError as exc:
                raise ExecutionError(str(exc)) from exc
            path = self._path(scratch, name)
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(path, "w") as handle:
                for line in lines:
                    handle.write(line + "\n")

    def _read_back(
        self,
        graph: DataflowGraph,
        environment: ExecutionEnvironment,
        scratch: str,
        result: ExecutionResult,
    ) -> None:
        for edge in graph.output_edges():
            if edge.kind is not EdgeKind.FILE or not edge.name:
                continue
            path = self._path(scratch, edge.name)
            try:
                with open(path) as handle:
                    lines = decode_lines(handle.read().encode("utf-8"))
            except FileNotFoundError:
                lines = []
            # The script itself applied any `>>` append against the
            # materialized content, so the file now holds the final stream.
            environment.filesystem.write(edge.name, lines)
            result.files[edge.name] = lines


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

BackendFactory = Callable[..., ExecutionBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend under ``name``."""
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Names of every registered backend, sorted."""
    return sorted(_BACKENDS)


def create_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate the named backend with backend-specific options."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return factory(**options)


def _jit_backend_factory(**options) -> ExecutionBackend:
    """Deferred factory: the jit package imports this module, not vice versa."""
    from repro.jit.driver import JitBackend

    return JitBackend(**options)


def _cluster_backend_factory(**options) -> ExecutionBackend:
    """Deferred factory: the cluster package imports this module, not vice versa."""
    from repro.cluster.coordinator import ClusterBackend

    return ClusterBackend(**options)


register_backend("interpreter", InterpreterBackend)
register_backend("parallel", ParallelBackend)
register_backend("shell", ShellBackend)
register_backend("jit", _jit_backend_factory)
register_backend("cluster", _cluster_backend_factory)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run(
    graph: DataflowGraph,
    backend: str = "interpreter",
    environment: Optional[ExecutionEnvironment] = None,
    **options,
) -> EngineResult:
    """Execute one dataflow graph on the named backend.

    ``options`` are forwarded to the backend constructor (e.g.
    ``use_host_commands=True`` for the parallel backend).  The environment's
    filesystem is updated with whatever the graph writes, so successive runs
    can share state exactly like the executor.
    """
    environment = environment or ExecutionEnvironment()
    return create_backend(backend, **options).execute(graph, environment)


def run_script(
    source: str,
    backend: str = "interpreter",
    environment: Optional[ExecutionEnvironment] = None,
    config: Optional[ParallelizationConfig] = None,
    **options,
) -> EngineResult:
    """Deprecated: use :func:`repro.api.run` (same semantics, one front door)."""
    import warnings

    warnings.warn(
        "repro.engine.run_script is deprecated; use repro.api.run(source, "
        "config=..., backend=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.pash import run as api_run

    return api_run(
        source, config=config, backend=backend, environment=environment, **options
    )
