"""Persistent worker pool: amortize process startup across engine runs.

The PR-1 scheduler forked one fresh process per DFG node per run, so a batch
of short pipelines — the Table-2/unix50 shape — was dominated by ``fork`` +
interpreter-duplication cost rather than by data movement.  This module keeps
a pool of long-lived worker processes (the PaPy architecture: workers are
created once and receive *tasks*, not lifetimes) that the scheduler feeds
:class:`~repro.engine.workers.WorkerPlan`\\ s over per-worker duplex pipes.

Channel file descriptors cannot travel through a queue as plain integers, so
each dispatch sends the plan first (fds replaced by a placeholder) and then
passes the real descriptors over the same socket with ``SCM_RIGHTS``
(:func:`multiprocessing.reduction.send_handle`).  This works under every
start method — which is what makes the engine function on spawn-only
platforms, where fd inheritance by fork never existed: the worker re-creates
the standard command registry in the child (plans carry ``registry=None``
for the standard registry) and receives everything else explicitly.

Lifecycle:

* a pool grows lazily — a graph with more nodes than idle workers spawns the
  difference, because every node of a graph must run *concurrently* (a node
  queued behind a busy worker could deadlock its producers);
* after a run the workers return to the idle set and are reused by the next
  run (``EngineMetrics.processes_reused`` counts these); idle workers beyond
  ``max_idle`` are shut down;
* :func:`shared_pool` returns the process-wide default pool (one per start
  method), shut down at interpreter exit; sessions that want deterministic
  teardown create a private :class:`WorkerPool` (``with Pash(...) as pash:``
  does) and call :meth:`WorkerPool.shutdown` themselves.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import warnings
from dataclasses import replace
from multiprocessing import reduction
from typing import Dict, List, Optional

from repro.engine.workers import WorkerPlan, execute_plan
from repro.obs.metrics import counter_inc, gauge_set

#: Sentinel fd value marking a port whose real descriptor follows over the
#: dispatch socket via SCM_RIGHTS.
FD_PENDING = -2

#: Idle workers kept alive per pool after a run (excess are shut down).
DEFAULT_MAX_IDLE = 32

_warned_methods = set()


def resolve_context(preferred: str):
    """A multiprocessing context for ``preferred``, falling back gracefully.

    On platforms without the preferred start method (e.g. ``fork`` on a
    spawn-only build) the default context is used instead, with a single
    warning per process — the pool's explicit fd passing and registry
    re-registration make the engine correct under any method.
    """
    try:
        return multiprocessing.get_context(preferred)
    except ValueError:
        if preferred not in _warned_methods:
            _warned_methods.add(preferred)
            fallback = multiprocessing.get_start_method(allow_none=False)
            warnings.warn(
                f"multiprocessing start method {preferred!r} is unavailable on "
                f"this platform; falling back to {fallback!r} (the worker pool "
                "passes descriptors explicitly, so execution stays correct)",
                RuntimeWarning,
                stacklevel=2,
            )
        return multiprocessing.get_context()


def _pool_worker_main(connection, report_queue) -> None:
    """Body of one persistent worker: receive plans, execute, repeat.

    Each task is a :class:`WorkerPlan` whose channel ports carry
    :data:`FD_PENDING`; the real descriptors arrive next over the same
    socket, in port order (inputs, then outputs).  ``None`` is the shutdown
    sentinel.  The loop never dies on a task failure —
    :func:`~repro.engine.workers.execute_plan` converts every outcome into a
    report — so one worker serves arbitrarily many runs.
    """
    while True:
        try:
            plan = connection.recv()
        except (EOFError, OSError):
            break
        if plan is None:
            break
        try:
            for port in list(plan.inputs) + list(plan.outputs):
                if port.fd == FD_PENDING:
                    port.fd = reduction.recv_handle(connection)
        except (EOFError, OSError):  # pragma: no cover - dispatcher died mid-task
            break
        execute_plan(plan, report_queue)
    try:
        connection.close()
    except OSError:  # pragma: no cover - defensive
        pass


class PoolWorker:
    """Parent-side handle of one persistent worker process."""

    def __init__(self, context, report_queue) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.connection = parent_conn
        self.process = context.Process(
            target=_pool_worker_main,
            args=(child_conn, report_queue),
            name="pash-pool-worker",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.busy = False

    @property
    def pid(self) -> int:
        return self.process.pid or -1

    def send_plan(self, plan: WorkerPlan) -> None:
        """Ship one task: pickled plan first, then its fds via SCM_RIGHTS."""
        payload = replace(
            plan,
            inputs=[
                replace(port, fd=FD_PENDING if port.fd is not None else None)
                for port in plan.inputs
            ],
            outputs=[
                replace(port, fd=FD_PENDING if port.fd is not None else None)
                for port in plan.outputs
            ],
            close_fds=[],  # pool workers only ever hold their own descriptors
        )
        self.connection.send(payload)
        for port in list(plan.inputs) + list(plan.outputs):
            if port.fd is not None:
                reduction.send_handle(self.connection, port.fd, self.process.pid)

    def stop(self, timeout: float = 1.0) -> None:
        """Shut the worker down (sentinel first, terminate as a last resort)."""
        try:
            self.connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def kill(self) -> None:
        """Terminate without ceremony (failure paths: the worker may be wedged)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=1.0)
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - defensive
            pass


class WorkerPool:
    """A growable set of persistent worker processes sharing one report queue."""

    def __init__(
        self,
        start_method: str = "fork",
        size: Optional[int] = None,
        max_idle: int = DEFAULT_MAX_IDLE,
    ) -> None:
        self.context = resolve_context(start_method)
        self.report_queue = self.context.Queue()
        #: Serializes whole scheduler runs on this pool: all of a run's
        #: reports travel through the one shared queue, so two concurrent
        #: runs would steal each other's.  Threads wanting truly concurrent
        #: parallel-backend runs should use one pool each (e.g. one
        #: ``with Pash(...)`` session per thread).
        self.run_lock = threading.Lock()
        self.max_idle = max(0, max_idle)
        self._idle: List[PoolWorker] = []
        self._busy: Dict[int, PoolWorker] = {}  # id(worker) -> worker
        self._closed = False
        #: Lifetime counters (metrics pull per-run deltas from these).
        self.processes_spawned = 0
        self.tasks_dispatched = 0
        self.tasks_reused = 0
        self.workers_replaced = 0
        atexit.register(self.shutdown)
        if size:
            self.prewarm(size)

    # ------------------------------------------------------------------

    @property
    def start_method(self) -> str:
        return self.context.get_start_method()

    @property
    def worker_count(self) -> int:
        return len(self._idle) + len(self._busy)

    def worker_pids(self) -> List[int]:
        """Pids of every live pool worker (idle and busy), sorted.

        Observability hook: worker spans and ``NodeMetrics.pid`` can be
        checked against this set to prove a node ran on a pooled process
        rather than a dedicated fork.
        """
        workers = list(self._idle) + list(self._busy.values())
        return sorted(worker.pid for worker in workers if worker.pid > 0)

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus current occupancy (the daemon's STATS view)."""
        return {
            "workers": self.worker_count,
            "idle": len(self._idle),
            "busy": len(self._busy),
            "processes_spawned": self.processes_spawned,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_reused": self.tasks_reused,
            "workers_replaced": self.workers_replaced,
        }

    def prewarm(self, count: int) -> None:
        """Ensure at least ``count`` workers exist (spawning the difference)."""
        if self._closed:
            raise RuntimeError("cannot prewarm a closed worker pool")
        while self.worker_count < count:
            self._idle.append(self._spawn())

    def ensure_idle(self, count: int) -> None:
        """Ensure at least ``count`` *idle* workers are ready to dispatch to.

        The scheduler calls this before opening a run's channels: under the
        ``fork`` start method a worker spawned *during* a run would inherit
        the run's pipe descriptors and hold their write ends open forever,
        so every worker a run may need must exist before its pipes do.

        Self-healing: idle workers that died while parked (OOM-killed,
        crashed mid-shutdown, SIGKILLed by a chaos test) are detected and
        replaced here instead of being handed out as corpses — dispatching
        to one would only surface later as a broken pipe or a lost report.
        """
        if self._closed:
            raise RuntimeError("cannot grow a closed worker pool")
        dead = [worker for worker in self._idle if not worker.process.is_alive()]
        for worker in dead:
            self._idle.remove(worker)
            worker.kill()
            self.workers_replaced += 1
            counter_inc(
                "pash_pool_workers_replaced_total",
                1,
                "Dead pool workers replaced before a run.",
            )
        while len(self._idle) < count:
            self._idle.append(self._spawn())

    def _spawn(self) -> PoolWorker:
        worker = PoolWorker(self.context, self.report_queue)
        self.processes_spawned += 1
        counter_inc(
            "pash_pool_processes_spawned_total", 1, "Pool worker processes spawned."
        )
        gauge_set(
            "pash_pool_workers",
            self.worker_count + 1,  # the new worker is not in a set yet
            "Live pool workers (idle + busy).",
        )
        return worker

    # ------------------------------------------------------------------

    def dispatch(self, plan: WorkerPlan) -> Optional[PoolWorker]:
        """Hand ``plan`` to an idle worker (never spawning one mid-run).

        Returns the worker now executing the plan, or ``None`` when the plan
        cannot travel to a persistent worker — no idle worker left, a broken
        handshake, or an unpicklable custom command registry.  The caller
        then falls back to a dedicated fork, which inherits registry and
        descriptors by memory and closes the ones it does not own; spawning
        a *pool* worker here instead would leak the run's pipe fds into it
        (see :meth:`ensure_idle`).
        """
        if self._closed:
            raise RuntimeError("cannot dispatch on a closed worker pool")
        if not self._idle:
            return None
        worker = self._idle.pop()
        try:
            worker.send_plan(plan)
        except (pickle.PicklingError, AttributeError, TypeError):
            # Nothing was written (pickling happens before the send); the
            # worker is still clean and reusable.
            self._idle.append(worker)
            return None
        except (BrokenPipeError, OSError):
            # The worker died, or the socket broke mid-handshake leaving it
            # in an unknown protocol state: discard it.
            worker.kill()
            return None
        worker.busy = True
        self._busy[id(worker)] = worker
        self.tasks_dispatched += 1
        self.tasks_reused += 1
        counter_inc(
            "pash_pool_tasks_reused_total",
            1,
            "Tasks dispatched onto an already-warm pool worker.",
        )
        return worker

    def release(self, worker: PoolWorker) -> None:
        """Return a worker whose report arrived to the idle set (idempotent).

        Re-releasing is a no-op: putting the same worker on the idle list
        twice would hand it two nodes of one graph, serializing them on one
        process — a deadlock when the first blocks on the second's stream.
        """
        if not worker.busy:
            return
        worker.busy = False
        self._busy.pop(id(worker), None)
        if self._closed or not worker.process.is_alive():
            worker.kill()
            return
        if len(self._idle) >= self.max_idle:
            worker.stop()
            return
        self._idle.append(worker)

    def discard(self, worker: PoolWorker) -> None:
        """Drop a worker that failed mid-run (wedged, killed, or suspect)."""
        worker.busy = False
        self._busy.pop(id(worker), None)
        self._idle = [idle for idle in self._idle if idle is not worker]
        worker.kill()

    def drain_stale_reports(self) -> None:
        """Throw away reports queued by a run that already gave up."""
        import queue as queue_module

        while True:
            try:
                self.report_queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker (idempotent; registered with ``atexit``)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._idle:
            worker.stop()
        self._idle.clear()
        for worker in list(self._busy.values()):
            worker.kill()
        self._busy.clear()
        gauge_set("pash_pool_workers", 0, "Live pool workers (idle + busy).")

    @property
    def closed(self) -> bool:
        return self._closed


# ---------------------------------------------------------------------------
# The process-wide default pool (one per start method)
# ---------------------------------------------------------------------------

_shared_pools: Dict[str, WorkerPool] = {}
_pool_epoch = itertools.count()


def shared_pool(start_method: str = "fork") -> WorkerPool:
    """The process-wide pool for ``start_method``, created on first use.

    A pool forked in a parent is useless in a forked child (its workers
    belong to the parent), so the cache is keyed on the owning pid as well
    — a child process transparently gets a fresh pool.
    """
    resolved = resolve_context(start_method).get_start_method()
    key = f"{resolved}:{os.getpid()}"
    pool = _shared_pools.get(key)
    if pool is None or pool.closed:
        pool = WorkerPool(start_method=resolved)
        _shared_pools[key] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Close every shared pool (used by tests; atexit covers normal exit)."""
    for pool in _shared_pools.values():
        pool.shutdown()
    _shared_pools.clear()
