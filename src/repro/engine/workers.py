"""Worker-process bodies for the parallel engine.

Every DFG node is executed by one OS process — a persistent pool worker
(:mod:`repro.engine.pool`) or a dedicated fork — whose body is
:func:`execute_plan`: open the input sources (eager pumps on fan-in edges,
direct pipe reads everywhere else), evaluate the node, write the outputs.
Command nodes either exec the real host binary (when enabled and available)
or run the registry's pure-Python implementation — either way in a separate
process, so parallel branches genuinely overlap.

The data plane is *streaming*, not materialize-then-forward.  Each node runs
in one of three modes, picked by :func:`execution_mode`:

* ``chunks`` — pure pass-through nodes (relays, concatenations) forward raw
  framed byte chunks from their inputs to their outputs without ever
  decoding a line; memory use is one chunk.
* ``batches`` — stateless commands and fused stateless chains (per the
  Table-1 annotation classes; see
  :func:`repro.runtime.executor.node_streams_statelessly`) are evaluated one
  line batch at a time, which is bit-identical to whole-stream evaluation by
  the same property that makes them parallelizable; memory use is one batch.
  A :class:`~repro.dfg.nodes.FusedStage` runs its whole command chain over
  each batch in-process — no pipe, pump, or re-framing between members.
* ``materialize`` — everything else (sort-likes, aggregators, splits, host
  commands) still needs the whole stream; the eager pumps that feed it
  buffer at most ``spill_threshold`` bytes in memory and spill the rest to
  disk, so the *channel* layer stays bounded even here.

Workers never raise: every outcome, including failure, is delivered to the
scheduler as a report on the shared queue, and all owned file descriptors are
closed on the way out so that downstream workers always observe EOF instead
of hanging.  Graph-output streams larger than the spill threshold travel to
the scheduler through a spill file instead of the report queue's pipe.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.commands.base import CommandRegistry, Stream
from repro.dfg.nodes import CatNode, CommandNode, DFGNode, FusedStage, RelayNode
from repro.engine.channels import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_SPILL_THRESHOLD,
    ChannelReader,
    ChannelWriter,
    EagerPump,
    SpillBuffer,
    count_framed_lines,
    decode_lines,
    encode_lines,
    iter_decoded_batches,
    iter_encoded_chunks,
)
from repro.obs.tracer import TraceContext, record_worker_span
from repro.resilience import fault as fault_injection
from repro.resilience.errors import wrap_capacity_error
from repro.resilience.fault import FaultPlan
from repro.runtime.executor import (
    evaluate_node,
    evaluate_stateless_batch,
    node_streams_statelessly,
)

#: Report-entry key marking a graph output delivered via a spill file.
SPILL_PATH_KEY = "spill_path"


@dataclass
class InputPort:
    """Where a worker reads one input edge from.

    ``fd`` is the read end of an engine channel; ``path`` is a real on-disk
    file the worker streams chunk-by-chunk; when both are None the edge is a
    graph input whose stream the scheduler resolved up front (``data``).
    """

    edge_id: int
    fd: Optional[int] = None
    data: Optional[List[str]] = None
    path: Optional[str] = None


@dataclass
class OutputPort:
    """Where a worker writes one output edge to.

    ``fd`` is the write end of an engine channel; when None the edge is a
    graph output collected into the worker's report for the scheduler.
    """

    edge_id: int
    fd: Optional[int] = None


@dataclass
class WorkerPlan:
    """Everything one worker process needs to execute its node."""

    node: DFGNode
    inputs: List[InputPort] = field(default_factory=list)
    outputs: List[OutputPort] = field(default_factory=list)
    registry: Optional[CommandRegistry] = None
    use_host_commands: bool = False
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: In-memory high-water mark (bytes) of every stream buffer this worker
    #: owns — eager-pump windows and graph-output accumulators — beyond
    #: which data spills to disk.
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    #: Directory for spill files (None = the system temp directory).
    spill_directory: Optional[str] = None
    #: Every channel fd in the graph; the worker closes the ones it does not
    #: own so that EOF propagates correctly after the fork.  Empty for pool
    #: workers, which only ever receive their own descriptors.
    close_fds: List[int] = field(default_factory=list)
    #: When to drain channel inputs through an eager-pump thread:
    #: ``"fan-in"`` pumps only nodes with two or more channel inputs (the
    #: edges the order-aware analysis marks deadlock-relevant); ``"all"``
    #: reproduces the pump-every-edge behaviour of earlier revisions.
    pump_policy: str = "fan-in"
    #: Identifies the scheduler run this plan belongs to; echoed in the
    #: report so a shared (pool) report queue never mixes runs up.
    run_token: int = 0
    #: Tracing handoff: when set, the worker records a span for its node
    #: (parented under the scheduler's run span) and ships it back inside
    #: the report.  ``None`` — the default — skips the span path entirely,
    #: keeping the traced-off hot path at one attribute check.
    trace: Optional[TraceContext] = None
    #: Fault-injection handoff (chaos testing): when set, the worker
    #: installs this plan as its process-global injector before executing,
    #: arming the ``pool:worker-exec``/``spill:write``/``channel:read``
    #: fault points inside the worker.  Unpickling resets the plan's
    #: counters, so fault state is per-process.  ``None`` — the default —
    #: leaves the injection hooks at one global load + None check each.
    faults: Optional[FaultPlan] = None


def host_command_available(node: DFGNode, use_host_commands: bool) -> bool:
    """Whether this node can exec a real binary instead of the Python impl.

    Restricted to single-input single-output command nodes: those map onto a
    plain ``argv < stdin > stdout`` invocation without /dev/fd plumbing.
    """
    return (
        use_host_commands
        and isinstance(node, CommandNode)
        and len(node.inputs) <= 1
        and len(node.outputs) <= 1
        and shutil.which(node.name) is not None
    )


def execution_mode(plan: WorkerPlan) -> str:
    """Pick the streaming mode for this plan: chunks, batches, or materialize."""
    node = plan.node
    if host_command_available(node, plan.use_host_commands):
        return "materialize"
    if isinstance(node, (CatNode, RelayNode)):
        return "chunks"
    if (
        isinstance(node, CommandNode)
        and node.name == "cat"
        and not node.arguments
        and not node.config_inputs
    ):
        return "chunks"
    if node_streams_statelessly(node):
        return "batches"
    return "materialize"


def _run_host_command(node: CommandNode, inputs: List[Stream]) -> Stream:
    """Execute the node as a real subprocess (input via stdin, LC_ALL=C)."""
    argv = [node.name] + list(node.arguments)
    payload = encode_lines(inputs[0]) if inputs else b""
    environment = dict(os.environ, LC_ALL="C")
    completed = subprocess.run(
        argv, input=payload, stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=environment
    )
    if completed.returncode != 0:
        detail = completed.stderr.decode("utf-8", "replace").strip()
        raise RuntimeError(f"host command {node.name!r} exited {completed.returncode}: {detail}")
    return decode_lines(completed.stdout)


# ---------------------------------------------------------------------------
# Input sources
# ---------------------------------------------------------------------------


class InputSource:
    """Uniform, counted consumption API over one input port.

    Exactly one of the consumption methods is used per run; each counts the
    bytes and lines that flowed through so the worker's report stays
    accurate without a second pass over the data.
    """

    def __init__(self) -> None:
        self.bytes_in = 0
        self.lines_in = 0

    def _raw_chunks(self) -> Iterator[bytes]:
        raise NotImplementedError

    def iter_chunks(self) -> Iterator[bytes]:
        """Framed byte chunks, counted (pass-through consumption)."""
        last = b""
        for chunk in self._raw_chunks():
            if not chunk:
                continue
            self.bytes_in += len(chunk)
            self.lines_in += count_framed_lines(chunk)
            last = chunk[-1:]
            yield chunk
        if last and last != b"\n":
            # A final line without its newline is still a line.
            self.lines_in += 1

    def iter_batches(self) -> Iterator[List[str]]:
        """Decoded line batches (one per arriving chunk), counted.

        Built on :func:`repro.engine.channels.iter_decoded_batches`, so the
        byte-level split (UTF-8-safe across chunk boundaries) lives in one
        place.
        """

        def counted() -> Iterator[bytes]:
            for chunk in self._raw_chunks():
                self.bytes_in += len(chunk)
                yield chunk

        for batch in iter_decoded_batches(counted()):
            self.lines_in += len(batch)
            yield batch

    def lines(self) -> List[str]:
        """Materialize the whole stream (counted)."""
        collected: List[str] = []
        for batch in self.iter_batches():
            collected.extend(batch)
        return collected

    # -- spill accounting (overridden by pump-backed sources) ---------------

    @property
    def peak_buffered_bytes(self) -> int:
        return 0

    @property
    def spilled_bytes(self) -> int:
        return 0

    @property
    def spill_events(self) -> int:
        return 0


class PumpSource(InputSource):
    """A channel input drained concurrently through a bounded eager pump."""

    def __init__(self, reader: ChannelReader, pump: EagerPump) -> None:
        super().__init__()
        self.reader = reader
        self.pump = pump

    def _raw_chunks(self) -> Iterator[bytes]:
        return self.pump.iter_chunks()

    @property
    def peak_buffered_bytes(self) -> int:
        return self.pump.peak_buffered_bytes

    @property
    def spilled_bytes(self) -> int:
        return self.pump.spilled_bytes

    @property
    def spill_events(self) -> int:
        return self.pump.spill_events


class DirectSource(InputSource):
    """A channel input read pipe-to-pipe, with no pump thread or extra copy.

    Used for every edge the order-aware analysis does *not* mark as
    deadlock-relevant: a node with a single channel input consumes it from
    the moment it starts, so its producer can never block behind an input
    this worker "has not reached yet" — the eager buffer would be pure tax
    (one thread plus one memcpy per chunk).  Backpressure remains the
    kernel's pipe buffer, exactly like a plain shell pipeline.
    """

    def __init__(self, reader: ChannelReader) -> None:
        super().__init__()
        self.reader = reader

    def _raw_chunks(self) -> Iterator[bytes]:
        return self.reader.iter_chunks()


class FileSource(InputSource):
    """A graph-input file streamed straight from disk, chunk-by-chunk.

    Disk reads never block on another worker, so no pump thread is needed;
    the stream is framed exactly like every other engine stream
    (newline-delimited UTF-8).
    """

    def __init__(self, path: str, chunk_size: int) -> None:
        super().__init__()
        self.path = path
        self.chunk_size = max(1, chunk_size)

    def _raw_chunks(self) -> Iterator[bytes]:
        with open(self.path, "rb") as handle:
            while True:
                chunk = handle.read(self.chunk_size)
                if not chunk:
                    return
                yield chunk


class InlineSource(InputSource):
    """A graph input the scheduler resolved up front as a list of lines."""

    def __init__(self, data: List[str], chunk_size: int) -> None:
        super().__init__()
        self.data = data
        self.chunk_size = chunk_size

    def _raw_chunks(self) -> Iterator[bytes]:
        return iter_encoded_chunks(self.data, self.chunk_size)

    def lines(self) -> List[str]:
        stream = list(self.data)
        self.lines_in += len(stream)
        self.bytes_in += sum(len(line) + 1 for line in stream)
        return stream


def _open_sources(plan: WorkerPlan) -> List[InputSource]:
    """One source per input port; fan-in channels get eager pumps.

    Deadlock-freedom needs eager buffering only where a worker consumes
    several channels *sequentially*: starting one pump per channel before
    any consumption guarantees no producer blocks on an input this worker
    has not reached yet.  A node with a single channel input is itself a
    continuous consumer, so (under the default ``"fan-in"`` policy) it reads
    the pipe directly — zero extra threads, zero extra copies on every
    straight-line edge.
    """
    channel_ports = sum(1 for port in plan.inputs if port.fd is not None)
    pump_channels = plan.pump_policy == "all" or channel_ports >= 2
    sources: List[InputSource] = []
    for port in plan.inputs:
        if port.fd is not None:
            reader = ChannelReader(port.fd, chunk_size=plan.chunk_size)
            if pump_channels:
                pump = EagerPump(
                    reader,
                    spill_threshold=plan.spill_threshold,
                    spill_directory=plan.spill_directory,
                )
                pump.start()
                sources.append(PumpSource(reader, pump))
            else:
                sources.append(DirectSource(reader))
        elif port.path is not None:
            sources.append(FileSource(port.path, plan.chunk_size))
        else:
            sources.append(InlineSource(list(port.data or []), plan.chunk_size))
    return sources


# ---------------------------------------------------------------------------
# Output sinks
# ---------------------------------------------------------------------------


class OutputSink:
    """Uniform, counted production API over one output port."""

    bytes_out = 0
    lines_out = 0

    def write_chunk(self, data: bytes) -> None:
        raise NotImplementedError

    def write_lines(self, lines: List[str]) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """Flush and close the destination (EOF downstream)."""

    def abandon(self) -> None:
        """Release the destination without flushing (failure path)."""


class ChannelSink(OutputSink):
    """An internal edge: writes go to the channel, chunked and counted.

    A consumer that exited early (e.g. ``head``) surfaces as
    ``BrokenPipeError``; like a process receiving SIGPIPE, the sink stops
    writing and swallows the rest of the stream.
    """

    def __init__(self, fd: int, chunk_size: int) -> None:
        self.writer = ChannelWriter(fd, chunk_size=chunk_size)
        self.dead = False

    @property
    def bytes_out(self) -> int:  # type: ignore[override]
        return self.writer.bytes_written

    @property
    def lines_out(self) -> int:  # type: ignore[override]
        return self.writer.lines_written

    def write_chunk(self, data: bytes) -> None:
        if self.dead:
            return
        try:
            self.writer.write_chunk(data)
        except BrokenPipeError:
            self.dead = True
            self.writer.abandon()

    def write_lines(self, lines: List[str]) -> None:
        if self.dead:
            return
        try:
            self.writer.write_lines(lines)
        except BrokenPipeError:
            self.dead = True
            self.writer.abandon()

    def finish(self) -> None:
        if self.dead:
            return
        try:
            self.writer.close()
        except BrokenPipeError:
            self.dead = True
            self.writer.abandon()

    def abandon(self) -> None:
        self.writer.abandon()


class ReportSink(OutputSink):
    """A graph-output edge: accumulated for the scheduler, spilling to disk.

    Small outputs travel inline through the report queue; past the spill
    threshold the framed stream is written to a named temp file instead, so
    a multi-hundred-megabyte graph output neither sits in worker memory nor
    squeezes through the report queue's pipe.  The scheduler reads the file
    back and deletes it.
    """

    def __init__(
        self,
        edge_id: int,
        spill_threshold: int,
        directory: Optional[str],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.edge_id = edge_id
        self.spill_threshold = max(0, spill_threshold)
        self.directory = directory
        self.chunk_size = chunk_size
        self._buffer = bytearray()
        self._file = None
        self._path: Optional[str] = None
        self.bytes_out = 0
        self.lines_out = 0
        self.peak_buffered_bytes = 0
        self.spilled_bytes = 0
        self.spill_events = 0

    def _append(self, data: bytes) -> None:
        self.bytes_out += len(data)
        self.lines_out += count_framed_lines(data)
        if self._file is None and len(self._buffer) + len(data) <= self.spill_threshold:
            self._buffer += data
            if len(self._buffer) > self.peak_buffered_bytes:
                self.peak_buffered_bytes = len(self._buffer)
            return
        fault_injection.fire(fault_injection.SPILL_WRITE, len(data))
        try:
            if self._file is None:
                if self.directory:
                    os.makedirs(self.directory, exist_ok=True)
                handle, self._path = tempfile.mkstemp(
                    prefix="pash-output-", suffix=".spill", dir=self.directory
                )
                self._file = os.fdopen(handle, "wb")
                if self._buffer:
                    self._file.write(self._buffer)
                    self.spilled_bytes += len(self._buffer)
                    self.spill_events += 1
                    self._buffer.clear()
            self._file.write(data)
        except OSError as exc:
            raise wrap_capacity_error(
                exc, "spill:write", self._path or self.directory, len(data)
            ) from exc
        self.spilled_bytes += len(data)
        self.spill_events += 1

    def write_chunk(self, data: bytes) -> None:
        if data:
            self._append(data)

    def write_lines(self, lines: List[str]) -> None:
        for chunk in iter_encoded_chunks(lines, self.chunk_size):
            self._append(chunk)

    def entry(self):
        """The report-queue representation of this output."""
        if self._file is not None:
            return {SPILL_PATH_KEY: self._path, "lines": self.lines_out}
        return decode_lines(bytes(self._buffer))

    def finish(self) -> None:
        if self._file is not None:
            self._file.close()

    def abandon(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None
                if self._path is not None:
                    try:
                        os.unlink(self._path)
                    except OSError:
                        pass
                    self._path = None
        self._buffer.clear()


def _open_sinks(plan: WorkerPlan) -> List[OutputSink]:
    sinks: List[OutputSink] = []
    for port in plan.outputs:
        if port.fd is not None:
            sinks.append(ChannelSink(port.fd, plan.chunk_size))
        else:
            sinks.append(
                ReportSink(
                    port.edge_id, plan.spill_threshold, plan.spill_directory, plan.chunk_size
                )
            )
    return sinks


# ---------------------------------------------------------------------------
# Streaming node bodies
# ---------------------------------------------------------------------------


def _normalized_chunks(sources: List[InputSource]) -> Iterator[bytes]:
    """Concatenate the sources' framed streams, chunk-granular.

    A stream whose final line lacks a newline gets one appended before the
    next stream starts, matching the line-level concatenation the
    interpreter performs (`cat a b` must not merge a's last line with b's
    first).
    """
    for source in sources:
        last = b""
        for chunk in source.iter_chunks():
            last = chunk[-1:]
            yield chunk
        if last and last != b"\n":
            yield b"\n"


def _run_chunk_mode(
    plan: WorkerPlan, sources: List[InputSource], sinks: List[OutputSink]
) -> List[SpillBuffer]:
    """Forward raw chunks input→output; returns any staging buffers used."""
    node = plan.node
    if isinstance(node, (CatNode, RelayNode)) and len(plan.outputs) != 1:
        # Parity with the interpreter's arity check: relays and cats produce
        # exactly one stream (command nodes replicate, these do not).
        raise RuntimeError(
            f"node {node.label()} produced 1 streams for "
            f"{len(plan.outputs)} output edges"
        )
    if isinstance(node, RelayNode) and node.blocking:
        # Blocking-eager semantics (Fig. 6): absorb the whole stream before
        # forwarding anything — through a bounded buffer, not a list.
        stage = SpillBuffer(plan.spill_threshold, directory=plan.spill_directory)
        for chunk in _normalized_chunks(sources):
            stage.append(chunk)
        stage.close()
        for chunk in stage:
            for sink in sinks:
                sink.write_chunk(chunk)
        return [stage]
    for chunk in _normalized_chunks(sources):
        for sink in sinks:
            sink.write_chunk(chunk)
    return []


def _run_batch_mode(
    plan: WorkerPlan, sources: List[InputSource], sinks: List[OutputSink],
    registry: CommandRegistry, report: Dict[str, object],
) -> None:
    """Evaluate a stateless command (or fused chain) one line batch at a time."""
    node = plan.node
    compute = 0.0
    saw_input = False
    for batch in sources[0].iter_batches():
        saw_input = True
        started = time.perf_counter()
        output = evaluate_stateless_batch(node, batch, registry)
        compute += time.perf_counter() - started
        for sink in sinks:
            sink.write_lines(output)
    if not saw_input:
        # Preserve exact interpreter behaviour for empty streams even if a
        # command's annotation overstates its statelessness.
        started = time.perf_counter()
        output = evaluate_stateless_batch(node, [], registry)
        compute += time.perf_counter() - started
        for sink in sinks:
            sink.write_lines(output)
    report["compute_seconds"] = compute


def _run_materialize_mode(
    plan: WorkerPlan, sources: List[InputSource], sinks: List[OutputSink],
    registry: CommandRegistry, report: Dict[str, object],
) -> None:
    """Whole-stream evaluation for nodes that need all their input at once."""
    node = plan.node
    inputs: List[Stream] = [source.lines() for source in sources]
    started = time.perf_counter()
    if host_command_available(node, plan.use_host_commands):
        report["host_command"] = True
        outputs = [_run_host_command(node, inputs)]
    else:
        outputs = evaluate_node(node, inputs, registry)
    report["compute_seconds"] = time.perf_counter() - started
    # Mirror the interpreter's arity check: a mismatch must be a loud
    # error, not silently-empty downstream edges.
    if len(outputs) != len(plan.outputs):
        raise RuntimeError(
            f"node {node.label()} produced {len(outputs)} streams for "
            f"{len(plan.outputs)} output edges"
        )
    for sink, stream in zip(sinks, outputs):
        sink.write_lines(stream)


# ---------------------------------------------------------------------------
# The worker body
# ---------------------------------------------------------------------------


def execute_plan(plan: WorkerPlan, report_queue) -> None:
    """Process body: evaluate one node and report the outcome.

    The report always reaches the queue, carrying either the node's metrics
    (and any graph-output streams, inline or as spill-file references) or an
    error string.
    """
    node = plan.node
    report: Dict[str, object] = {
        "node_id": node.node_id,
        "label": node.label(),
        "kind": node.kind,
        "pid": os.getpid(),
        "token": plan.run_token,
        "error": None,
        "outputs": {},
        "wall_seconds": 0.0,
        "compute_seconds": 0.0,
        "bytes_in": 0,
        "bytes_out": 0,
        "lines_in": 0,
        "lines_out": 0,
        "host_command": False,
        "peak_buffered_bytes": 0,
        "spilled_bytes": 0,
        "spill_events": 0,
    }
    started = time.perf_counter()
    trace_start_us = time.time_ns() // 1_000 if plan.trace is not None else 0
    mine = {port.fd for port in plan.inputs + plan.outputs if port.fd is not None}
    sources: List[InputSource] = []
    sinks: List[OutputSink] = []
    staging: List[SpillBuffer] = []
    try:
        if plan.faults is not None:
            fault_injection.install(plan.faults)
        fault_injection.fire(fault_injection.POOL_WORKER_EXEC)
        for fd in plan.close_fds:
            if fd not in mine:
                try:
                    os.close(fd)
                except OSError:
                    pass

        sources = _open_sources(plan)
        sinks = _open_sinks(plan)
        registry = plan.registry
        if registry is None:
            from repro.commands import standard_registry

            registry = standard_registry()

        mode = execution_mode(plan)
        if mode == "chunks":
            staging = _run_chunk_mode(plan, sources, sinks)
        elif mode == "batches":
            _run_batch_mode(plan, sources, sinks, registry, report)
        else:
            _run_materialize_mode(plan, sources, sinks, registry, report)

        for sink in sinks:
            sink.finish()
        for port, sink in zip(plan.outputs, sinks):
            if isinstance(sink, ReportSink):
                report["outputs"][port.edge_id] = sink.entry()  # type: ignore[index]
    except BaseException as exc:  # noqa: BLE001 - reported, never raised
        report["error"] = f"{type(exc).__name__}: {exc}"
        for sink in sinks:
            try:
                sink.abandon()
            except Exception:  # pragma: no cover - defensive
                pass
    finally:
        # Guarantee EOF downstream even on failure paths.
        for fd in mine:
            try:
                os.close(fd)
            except OSError:
                pass
        for source in sources:
            report["bytes_in"] += source.bytes_in
            report["lines_in"] += source.lines_in
        for sink in sinks:
            report["bytes_out"] += sink.bytes_out
            report["lines_out"] += sink.lines_out
        buffers = [
            *(source for source in sources),
            *(sink for sink in sinks if isinstance(sink, ReportSink)),
            *staging,
        ]
        report["peak_buffered_bytes"] = max(
            (buffer.peak_buffered_bytes for buffer in buffers), default=0
        )
        report["spilled_bytes"] = sum(buffer.spilled_bytes for buffer in buffers)
        report["spill_events"] = sum(buffer.spill_events for buffer in buffers)
        report["wall_seconds"] = time.perf_counter() - started
        if plan.trace is not None:
            # The span carries the node's full counter set as attributes, so
            # byte/line/spill flow is queryable per span in any exporter.  It
            # ships to the scheduler inside this report (same queue, same
            # pickle) — no extra channel, no cost when tracing is off.
            span = record_worker_span(
                plan.trace,
                name=f"node:{report['label']}",
                category="worker",
                start_us=trace_start_us,
                duration_us=int(report["wall_seconds"] * 1e6),  # type: ignore[operator]
                attributes={
                    "node_id": report["node_id"],
                    "kind": report["kind"],
                    "error": report["error"],
                    "wall_seconds": report["wall_seconds"],
                    "compute_seconds": report["compute_seconds"],
                    "bytes_in": report["bytes_in"],
                    "bytes_out": report["bytes_out"],
                    "lines_in": report["lines_in"],
                    "lines_out": report["lines_out"],
                    "host_command": report["host_command"],
                    "peak_buffered_bytes": report["peak_buffered_bytes"],
                    "spilled_bytes": report["spilled_bytes"],
                    "spill_events": report["spill_events"],
                },
            )
            report["spans"] = [span]
        report_queue.put(report)
