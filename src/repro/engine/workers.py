"""Worker-process bodies for the parallel engine.

Every DFG node becomes one OS process whose body is :func:`execute_plan`:
drain all inputs concurrently (eager pumps), evaluate the node, write the
outputs.  Command nodes either exec the real host binary (when enabled and
available) or run the registry's pure-Python implementation — either way in
a separate process, so parallel branches genuinely overlap.

Workers never raise: every outcome, including failure, is delivered to the
scheduler as a report on the shared queue, and all owned file descriptors are
closed on the way out so that downstream workers always observe EOF instead
of hanging.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.commands.base import CommandRegistry, Stream
from repro.dfg.nodes import CommandNode, DFGNode
from repro.engine.channels import (
    DEFAULT_CHUNK_SIZE,
    ChannelReader,
    ChannelWriter,
    EagerPump,
    decode_lines,
    encode_lines,
)
from repro.runtime.executor import evaluate_node


@dataclass
class InputPort:
    """Where a worker reads one input edge from.

    ``fd`` is the read end of an engine channel; when None the edge is a
    graph input whose stream the scheduler resolved up front (``data``).
    """

    edge_id: int
    fd: Optional[int] = None
    data: Optional[List[str]] = None


@dataclass
class OutputPort:
    """Where a worker writes one output edge to.

    ``fd`` is the write end of an engine channel; when None the edge is a
    graph output collected into the worker's report for the scheduler.
    """

    edge_id: int
    fd: Optional[int] = None


@dataclass
class WorkerPlan:
    """Everything one worker process needs to execute its node."""

    node: DFGNode
    inputs: List[InputPort] = field(default_factory=list)
    outputs: List[OutputPort] = field(default_factory=list)
    registry: Optional[CommandRegistry] = None
    use_host_commands: bool = False
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Every channel fd in the graph; the worker closes the ones it does not
    #: own so that EOF propagates correctly after the fork.
    close_fds: List[int] = field(default_factory=list)


def host_command_available(node: DFGNode, use_host_commands: bool) -> bool:
    """Whether this node can exec a real binary instead of the Python impl.

    Restricted to single-input single-output command nodes: those map onto a
    plain ``argv < stdin > stdout`` invocation without /dev/fd plumbing.
    """
    return (
        use_host_commands
        and isinstance(node, CommandNode)
        and len(node.inputs) <= 1
        and len(node.outputs) <= 1
        and shutil.which(node.name) is not None
    )


def _run_host_command(node: CommandNode, inputs: List[Stream]) -> Stream:
    """Execute the node as a real subprocess (input via stdin, LC_ALL=C)."""
    argv = [node.name] + list(node.arguments)
    payload = encode_lines(inputs[0]) if inputs else b""
    environment = dict(os.environ, LC_ALL="C")
    completed = subprocess.run(
        argv, input=payload, stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=environment
    )
    if completed.returncode != 0:
        detail = completed.stderr.decode("utf-8", "replace").strip()
        raise RuntimeError(f"host command {node.name!r} exited {completed.returncode}: {detail}")
    return decode_lines(completed.stdout)


def _inline_size(lines: List[str]) -> int:
    """Approximate framed size of an inline stream (exact for ASCII)."""
    return sum(len(line) + 1 for line in lines)


def execute_plan(plan: WorkerPlan, report_queue) -> None:
    """Process body: evaluate one node and report the outcome.

    The report always reaches the queue, carrying either the node's metrics
    (and any graph-output streams) or an error string.
    """
    node = plan.node
    report: Dict[str, object] = {
        "node_id": node.node_id,
        "label": node.label(),
        "kind": node.kind,
        "pid": os.getpid(),
        "error": None,
        "outputs": {},
        "wall_seconds": 0.0,
        "bytes_in": 0,
        "bytes_out": 0,
        "lines_in": 0,
        "lines_out": 0,
        "host_command": False,
    }
    started = time.perf_counter()
    mine = {port.fd for port in plan.inputs + plan.outputs if port.fd is not None}
    writers: List[ChannelWriter] = []
    try:
        for fd in plan.close_fds:
            if fd not in mine:
                try:
                    os.close(fd)
                except OSError:
                    pass

        # Drain every channel input concurrently so producers never block on
        # an idle consumer (engine-level eager buffering; see channels.py).
        readers: Dict[int, ChannelReader] = {}
        pumps: Dict[int, EagerPump] = {}
        for port in plan.inputs:
            if port.fd is not None:
                reader = ChannelReader(port.fd, chunk_size=plan.chunk_size)
                readers[port.edge_id] = reader
                pump = EagerPump(reader)
                pump.start()
                pumps[port.edge_id] = pump

        inputs: List[Stream] = []
        for port in plan.inputs:
            if port.fd is not None:
                inputs.append(pumps[port.edge_id].result())
                report["bytes_in"] += readers[port.edge_id].bytes_read
                report["lines_in"] += readers[port.edge_id].lines_read
            else:
                stream = list(port.data or [])
                inputs.append(stream)
                report["bytes_in"] += _inline_size(stream)
                report["lines_in"] += len(stream)

        if host_command_available(node, plan.use_host_commands):
            report["host_command"] = True
            outputs = [_run_host_command(node, inputs)]
        else:
            registry = plan.registry
            if registry is None:
                from repro.commands import standard_registry

                registry = standard_registry()
            outputs = evaluate_node(node, inputs, registry)

        # Mirror the interpreter's arity check: a mismatch must be a loud
        # error, not silently-empty downstream edges.
        if len(outputs) != len(plan.outputs):
            raise RuntimeError(
                f"node {node.label()} produced {len(outputs)} streams for "
                f"{len(plan.outputs)} output edges"
            )

        for port, stream in zip(plan.outputs, outputs):
            report["lines_out"] += len(stream)
            if port.fd is not None:
                writer = ChannelWriter(port.fd, chunk_size=plan.chunk_size)
                writers.append(writer)
                try:
                    writer.write_lines(stream)
                    writer.close()
                except BrokenPipeError:
                    # The consumer exited early (e.g. head); stop writing,
                    # exactly like a process receiving SIGPIPE.
                    writer.abandon()
                report["bytes_out"] += writer.bytes_written
            else:
                report["bytes_out"] += _inline_size(stream)
                report["outputs"][port.edge_id] = stream  # type: ignore[index]
    except BaseException as exc:  # noqa: BLE001 - reported, never raised
        report["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        # Guarantee EOF downstream even on failure paths.
        for fd in mine:
            try:
                os.close(fd)
            except OSError:
                pass
        report["wall_seconds"] = time.perf_counter() - started
        report_queue.put(report)
