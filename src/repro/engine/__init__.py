"""The parallel execution engine: real processes, real pipes, one API.

This package is the runtime half of the paper's promise — after the compiler
has rewritten a script into a wide dataflow graph, something has to *run*
that graph with genuine OS-level concurrency.  The engine provides:

* :mod:`repro.engine.channels` — OS-pipe streams with chunked framing,
  kernel backpressure, and eager-relay pumps,
* :mod:`repro.engine.pool` — the persistent worker pool: processes created
  once per session, fed plans (and file descriptors, via ``SCM_RIGHTS``)
  across runs,
* :mod:`repro.engine.scheduler` — one pooled worker per DFG node, wired
  with channels, with identity relays elided and pumps only on fan-in,
* :mod:`repro.engine.workers` — the worker bodies (Python command
  implementations or real host binaries),
* :mod:`repro.engine.metrics` — measured per-node wall time, bytes moved,
  and worker utilization,
* :mod:`repro.engine.api` — the backend registry behind
  ``repro.engine.run(graph, backend="interpreter"|"parallel"|"shell")``.
"""

from repro.engine.api import (
    EngineResult,
    ExecutionBackend,
    InterpreterBackend,
    ParallelBackend,
    ShellBackend,
    available_backends,
    create_backend,
    register_backend,
    run,
    run_script,
)
from repro.engine.channels import (
    DEFAULT_CHUNK_SIZE,
    Channel,
    ChannelError,
    ChannelReader,
    ChannelWriter,
    EagerPump,
)
from repro.engine.metrics import EngineMetrics, NodeMetrics
from repro.engine.pool import WorkerPool, shared_pool
from repro.engine.scheduler import ParallelScheduler, SchedulerOptions, execute_graph_parallel

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "Channel",
    "ChannelError",
    "ChannelReader",
    "ChannelWriter",
    "EagerPump",
    "EngineMetrics",
    "EngineResult",
    "ExecutionBackend",
    "InterpreterBackend",
    "NodeMetrics",
    "ParallelBackend",
    "ParallelScheduler",
    "SchedulerOptions",
    "ShellBackend",
    "WorkerPool",
    "shared_pool",
    "available_backends",
    "create_backend",
    "execute_graph_parallel",
    "register_backend",
    "run",
    "run_script",
]
