"""``pash-compile`` / ``pash-repro`` — the command-line front door.

Usage examples::

    pash-compile --width 16 script.sh            # print the parallel script
    pash-compile --width 8 --report script.sh    # also print what was done
    pash-compile --width 4 --no-eager script.sh  # ablate the eager relays
    pash-compile --width 4 --disable-pass eager-relays script.sh  # same, by name
    echo 'cat a b | grep x | sort' | pash-compile --width 4 -
    pash-compile --width 4 --execute parallel script.sh   # run it, too
    pash-compile --list-backends                 # registered engine backends
    pash-compile --version

The CLI is a thin veneer over the library API: the flags assemble one
:class:`repro.api.PashConfig` (via :meth:`PashConfig.from_cli_args`) and the
work happens in :meth:`repro.api.Pash.compile` /
:meth:`repro.api.CompiledScript.execute`.  By default the tool never executes
anything; like the paper's system it emits a new shell script that the user's
own shell runs.  With ``--execute`` it instead runs the compiled graphs on
one of the engine backends: input files are read from the real filesystem,
output files are written back to it, and our stdout carries the script's
output (the compiled script itself is still available through ``--output``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro
from repro import engine
from repro.api import CompiledScript, Pash, PashConfig
from repro.runtime.executor import ExecutionEnvironment, ExecutionError
from repro.runtime.streams import VirtualFileSystem


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pash-compile",
        description="Compile a POSIX shell script into its data-parallel equivalent.",
    )
    parser.add_argument(
        "script", nargs="?", default=None, help="path to the script, or '-' for stdin"
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    parser.add_argument("--width", type=int, default=2, help="parallelism width (default 2)")
    parser.add_argument(
        "--no-eager", action="store_true", help="disable eager relay insertion"
    )
    parser.add_argument(
        "--blocking-eager", action="store_true", help="use blocking relays instead of eager ones"
    )
    parser.add_argument(
        "--split",
        choices=("general", "input-aware", "none"),
        default="general",
        help="split strategy for single-input parallelizable commands",
    )
    parser.add_argument(
        "--fan-in", type=int, default=2, help="aggregation tree fan-in (default 2)"
    )
    parser.add_argument(
        "--disable-pass",
        action="append",
        default=None,
        metavar="NAME",
        help="remove an optimization pass by name (repeatable; e.g. "
        "'eager-relays', 'split-insertion')",
    )
    parser.add_argument(
        "--report", action="store_true", help="print a compilation report to stderr"
    )
    parser.add_argument(
        "--output", "-o", default=None, help="write the parallel script to this file"
    )
    parser.add_argument(
        "--execute",
        default=None,
        metavar="BACKEND",
        help="run the compiled graphs on the given engine backend instead of "
        "printing the script (see --list-backends; combine with --output to "
        "keep the script too)",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="print the registered engine backends and exit",
    )
    parser.add_argument(
        "--submit",
        default=None,
        metavar="HOST:PORT",
        help="submit the script to a running pash-serve daemon instead of "
        "compiling locally; the script's file inputs are uploaded into the "
        "job's virtual filesystem (see also pash-client for the full "
        "status/cancel/stats surface)",
    )
    parser.add_argument(
        "--tenant",
        default="default",
        metavar="NAME",
        help="tenant name for --submit (admission quotas are per tenant)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="persistent worker-pool size for '--execute parallel' (the pool "
        "is pre-warmed to N processes and grows on demand; 0 disables the "
        "pool and forks one fresh process per node)",
    )
    parser.add_argument(
        "--jit-backend",
        default=None,
        metavar="BACKEND",
        help="engine backend the JIT driver executes compiled regions on "
        "when '--execute jit' is used (default: parallel)",
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for '--execute cluster': localhost pash-worker "
        "processes to spawn, or registrations to wait for with "
        "--cluster-connect (default 2)",
    )
    parser.add_argument(
        "--cluster-connect",
        default=None,
        metavar="HOST:PORT",
        help="with '--execute cluster', listen on this address and wait for "
        "externally-started 'pash-worker --connect HOST:PORT' processes "
        "instead of spawning localhost workers",
    )
    parser.add_argument(
        "--adaptive-width",
        action="store_true",
        help="clamp the effective parallelization width to the cores the "
        "selected backend can keep busy (this host's, or the cluster-wide "
        "count with '--execute cluster')",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE.json",
        help="record spans for the whole compile-and-run pipeline (parse, "
        "passes, jit decisions, scheduler, workers) and write a Chrome "
        "trace_event JSON — open it in Perfetto or chrome://tracing",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="FILE",
        help="write the machine-readable run report (engine metrics + jit "
        "report + per-pass timings + span summary) as one JSON document",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a failed parallel run up to N times with exponential "
        "backoff before degrading to the sequential interpreter (arms the "
        "resilience ladder; see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="with --max-retries/--fault-plan: fail with a typed error after "
        "retries instead of degrading to the interpreter",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE.json",
        help="inject a deterministic fault plan ({\"seed\": N, \"faults\": "
        "[...]}) for chaos testing — see docs/RESILIENCE.md for the format",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_backends:
        for name in engine.available_backends():
            print(name)
        return 0
    if arguments.script is None:
        parser.error("the script argument is required (or '-' for stdin)")
    if arguments.execute and arguments.execute not in engine.available_backends():
        print(
            f"pash-compile: unknown backend {arguments.execute!r}; "
            f"available: {', '.join(engine.available_backends())}",
            file=sys.stderr,
        )
        return 2

    if arguments.script == "-":
        source = sys.stdin.read()
    else:
        with open(arguments.script) as handle:
            source = handle.read()

    if arguments.submit:
        return _submit(source, arguments)

    try:
        config = PashConfig.from_cli_args(arguments)
        compiled = Pash(config).compile(source)
    except ValueError as exc:  # e.g. an unknown --disable-pass name
        print(f"pash-compile: {exc}", file=sys.stderr)
        return 2

    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(compiled.text + "\n")
    elif not arguments.execute:
        print(compiled.text)

    exit_code = 0
    result = None
    if arguments.execute:
        if compiled.translation.rejected and arguments.execute != "jit":
            # Executing only the translated regions would silently skip the
            # rest of the script; the emitted text keeps those statements, so
            # running it under a real shell is the correct fallback.  The jit
            # backend is exempt: it executes control flow itself and falls
            # back per region, so partially-translatable scripts still run.
            reasons = "; ".join(reason for _, reason in compiled.translation.rejected)
            print(
                f"pash-compile: cannot --execute: {len(compiled.translation.rejected)} "
                f"statement(s) were not translated ({reasons}); run the emitted "
                "script under a shell instead",
                file=sys.stderr,
            )
            exit_code = 1
        else:
            try:
                result = _execute(compiled, arguments)
            except ExecutionError as exc:
                print(f"pash-compile: execution failed: {exc}", file=sys.stderr)
                exit_code = 1

    # The report (compilation + execution) and the observability artifacts
    # are emitted even when execution failed — a failing run is exactly the
    # one whose report and trace are wanted — and the exit code still says 1.
    if arguments.report:
        _emit_report(compiled, result)
    _export_artifacts(compiled, result, arguments)
    return exit_code


def _report_line(text: str) -> None:
    """The single formatting path for every ``--report`` stderr line."""
    print(f"# {text}", file=sys.stderr)


def _emit_report(compiled: CompiledScript, result: Optional[object]) -> None:
    """Print the full ``--report``: compilation first, then execution (if any).

    Every line — compilation stats, engine metrics, the JIT report — flows
    through :func:`_report_line`, and the function is called exactly once per
    invocation, so ``--report --execute jit --trace`` composes without
    duplicate stderr lines.
    """
    stats = compiled.stats
    _report_line(
        f"regions: {stats.regions_found} found, "
        f"{stats.regions_parallelized} parallelized, "
        f"{stats.regions_rejected} left sequential"
    )
    _report_line(f"runtime processes: {compiled.node_count}")
    _report_line(f"compile time: {stats.compile_time_seconds * 1000:.1f} ms")
    for command in stats.parallelized_commands:
        _report_line(f"  parallelized: {command}")
    if result is None:
        return
    _report_line(f"backend: {result.backend}")
    _report_line(result.metrics.summary())
    jit_report = getattr(result, "jit", None)
    if jit_report is not None:
        _report_line(jit_report.summary())


def _export_artifacts(
    compiled: CompiledScript, result: Optional[object], arguments: argparse.Namespace
) -> None:
    """Write the ``--trace`` Chrome trace and the ``--metrics-json`` report."""
    if arguments.trace:
        from repro.obs import export_chrome_trace

        export_chrome_trace(compiled.tracer.spans, arguments.trace)
    if arguments.metrics_json:
        import json

        from repro.obs import RunReport

        report = RunReport.from_run(
            result, compiled=compiled, spans=compiled.tracer.spans
        )
        with open(arguments.metrics_json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def _submit(source: str, arguments: argparse.Namespace) -> int:
    """Route the script to a running ``pash-serve`` daemon (``--submit``).

    The daemon never reads the submitter's filesystem (tenant isolation), so
    the script's file inputs must travel with the request: a best-effort
    local compile discovers the FILE input edges and every named input that
    exists on disk is uploaded into the job's virtual filesystem.  Scripts
    whose input names are computed at runtime should be submitted through
    ``pash-client submit --input`` with the uploads named explicitly.
    """
    from repro.dfg.edges import EdgeKind
    from repro.service.client import ServiceClient
    from repro.service.admission import ServiceBusy, ServiceError

    files = {}
    try:
        compiled = Pash(PashConfig.from_cli_args(arguments)).compile(source)
    except Exception:
        compiled = None  # dynamic scripts still submit; uploads are best-effort
    if compiled is not None:
        import os

        for region in compiled.translation.regions:
            for edge in region.dfg.input_edges():
                if edge.kind is EdgeKind.FILE and edge.name and os.path.isfile(edge.name):
                    with open(edge.name) as handle:
                        files[edge.name] = handle.read().splitlines()
    client = ServiceClient(arguments.submit)
    try:
        job = client.submit(
            source,
            tenant=arguments.tenant,
            files=files or None,
            backend=arguments.execute,
        )
    except ServiceBusy as busy:
        print(f"pash-compile: submission rejected ({busy.code}): {busy}", file=sys.stderr)
        return 3
    except ServiceError as error:
        print(f"pash-compile: {error}", file=sys.stderr)
        return 2
    if job.get("state") != "done":
        print(
            f"pash-compile: job {job.get('job_id')} {job.get('state')}: "
            f"{job.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    for line in job.get("stdout", []):
        print(line)
    for name, lines in (job.get("files") or {}).items():
        with open(name, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
    if arguments.report:
        jit = (job.get("report") or {}).get("jit") or {}
        if jit:
            _report_line(
                f"jit: {jit.get('regions_seen', 0)} regions seen, "
                f"{jit.get('regions_compiled', 0)} compiled, "
                f"{jit.get('cache_hits', 0)} cache hits, "
                f"{jit.get('fallbacks', 0)} fell back"
            )
    return 0


def _execute(compiled: CompiledScript, arguments: argparse.Namespace):
    """Run the already-compiled graphs on the selected engine backend.

    Input files are read from the real filesystem (via the VFS fallback);
    output files the script writes are persisted back to disk, and stdout
    goes to our stdout — the observable behaviour of running the script.
    Process stdin feeds the graphs' STDIN edges, except when the script
    itself was read from stdin (``-``), which already consumed it.
    Returns the :class:`~repro.engine.api.EngineResult` for reporting.
    """
    from repro.dfg.edges import EdgeKind

    needs_stdin = any(
        edge.kind is EdgeKind.STDIN
        for graph in compiled.optimized_graphs
        for edge in graph.input_edges()
    )
    stdin_lines: List[str] = []
    if needs_stdin and arguments.script != "-":
        stdin_lines = sys.stdin.read().splitlines()
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem(allow_real_files=True),
        stdin=stdin_lines,
    )
    result = compiled.execute(backend=arguments.execute, environment=environment)
    for line in result.stdout:
        print(line)
    for name, lines in result.files.items():
        with open(name, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
