"""``pash-compile`` — the command-line front door.

Usage examples::

    pash-compile --width 16 script.sh            # print the parallel script
    pash-compile --width 8 --report script.sh    # also print what was done
    pash-compile --width 4 --no-eager script.sh  # ablate the eager relays
    echo 'cat a b | grep x | sort' | pash-compile --width 4 -

The tool never executes anything; like the paper's system it emits a new
shell script that the user's own shell runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.backend.compiler import compile_script
from repro.transform.pipeline import EagerMode, ParallelizationConfig, SplitMode


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pash-compile",
        description="Compile a POSIX shell script into its data-parallel equivalent.",
    )
    parser.add_argument("script", help="path to the script, or '-' for stdin")
    parser.add_argument("--width", type=int, default=2, help="parallelism width (default 2)")
    parser.add_argument(
        "--no-eager", action="store_true", help="disable eager relay insertion"
    )
    parser.add_argument(
        "--blocking-eager", action="store_true", help="use blocking relays instead of eager ones"
    )
    parser.add_argument(
        "--split",
        choices=("general", "input-aware", "none"),
        default="general",
        help="split strategy for single-input parallelizable commands",
    )
    parser.add_argument(
        "--fan-in", type=int, default=2, help="aggregation tree fan-in (default 2)"
    )
    parser.add_argument(
        "--report", action="store_true", help="print a compilation report to stderr"
    )
    parser.add_argument(
        "--output", "-o", default=None, help="write the parallel script to this file"
    )
    return parser


def _config_from_arguments(arguments: argparse.Namespace) -> ParallelizationConfig:
    if arguments.no_eager:
        eager = EagerMode.NONE
    elif arguments.blocking_eager:
        eager = EagerMode.BLOCKING
    else:
        eager = EagerMode.EAGER
    split = {
        "general": SplitMode.GENERAL,
        "input-aware": SplitMode.INPUT_AWARE,
        "none": SplitMode.NONE,
    }[arguments.split]
    return ParallelizationConfig(
        width=arguments.width,
        eager=eager,
        split=split,
        aggregation_fan_in=arguments.fan_in,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.script == "-":
        source = sys.stdin.read()
    else:
        with open(arguments.script) as handle:
            source = handle.read()

    compiled = compile_script(source, _config_from_arguments(arguments))

    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(compiled.text + "\n")
    else:
        print(compiled.text)

    if arguments.report:
        stats = compiled.stats
        print(
            f"# regions: {stats.regions_found} found, "
            f"{stats.regions_parallelized} parallelized, "
            f"{stats.regions_rejected} left sequential",
            file=sys.stderr,
        )
        print(f"# runtime processes: {compiled.node_count}", file=sys.stderr)
        print(
            f"# compile time: {stats.compile_time_seconds * 1000:.1f} ms",
            file=sys.stderr,
        )
        for command in stats.parallelized_commands:
            print(f"#   parallelized: {command}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
