"""Edges of the dataflow graph: streams connecting nodes.

An edge is either a named file (the graph's external inputs and outputs) or a
FIFO created by PaSh when instantiating the graph (§5.2).  Edges carry at most
one producer and one consumer; fan-out requires explicit relay/tee nodes and
fan-in requires explicit ``cat`` nodes, mirroring the paper's model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class EdgeKind(enum.Enum):
    """What backs the stream."""

    FILE = "file"
    PIPE = "pipe"
    STDIN = "stdin"
    STDOUT = "stdout"

    @property
    def is_external(self) -> bool:
        """True for edges that cross the graph boundary by construction."""
        return self in (EdgeKind.STDIN, EdgeKind.STDOUT)


@dataclass
class Edge:
    """A stream edge.

    ``source`` and ``target`` are node identifiers (or None when the edge is a
    graph input/output).  ``name`` is the file name for FILE edges and a
    generated FIFO name for PIPE edges.
    """

    edge_id: int
    kind: EdgeKind = EdgeKind.PIPE
    name: Optional[str] = None
    source: Optional[int] = None
    target: Optional[int] = None
    #: Marks edges appended to the graph output via ``>>`` redirections.
    append: bool = False
    #: Free-form metadata (used by the simulator for sizes, by tests for tags).
    metadata: dict = field(default_factory=dict)

    @property
    def is_graph_input(self) -> bool:
        """True when no node in the graph produces this edge."""
        return self.source is None

    @property
    def is_graph_output(self) -> bool:
        """True when no node in the graph consumes this edge."""
        return self.target is None

    def display_name(self) -> str:
        """Human-readable name used by the emitter and in debug dumps."""
        if self.name:
            return self.name
        return f"#{self.edge_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Edge({self.edge_id}, {self.kind.value}, {self.display_name()}, "
            f"{self.source}->{self.target})"
        )
