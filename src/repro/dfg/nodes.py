"""Nodes of the dataflow graph.

Every node is a function from an ordered list of input streams to an ordered
list of output streams (§4.1).  Besides plain command nodes the graph can
contain the helper nodes PaSh inserts during optimization: ``cat`` (stream
concatenation), ``split`` (the inverse), relays (identity nodes used for
eager buffering), and aggregators (the merge stage of map/aggregate pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.annotations.classes import ParallelizabilityClass


@dataclass
class DFGNode:
    """Base node: ordered input and output edge identifiers."""

    node_id: int = -1
    inputs: List[int] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)

    #: Human-readable kind, overridden by subclasses.
    kind: str = "node"

    def label(self) -> str:
        """Short label used by debug dumps and the emitter."""
        return self.kind

    def parallelizability(self) -> ParallelizabilityClass:
        """Default: helper nodes are stateless identity-ish operators."""
        return ParallelizabilityClass.STATELESS


@dataclass
class CommandNode(DFGNode):
    """A node wrapping a concrete command invocation."""

    name: str = ""
    arguments: List[str] = field(default_factory=list)
    parallelizability_class: ParallelizabilityClass = ParallelizabilityClass.SIDE_EFFECTFUL
    #: Aggregator used when parallelizing a pure command (annotation-provided).
    aggregator: Optional[str] = None
    #: Input edge ids that are *configuration* inputs: replicated, not split.
    config_inputs: List[int] = field(default_factory=list)
    #: Set on the copies produced by the parallelization transformation so
    #: the optimizer does not try to parallelize them again.
    parallelized_copy: bool = False
    kind: str = "command"

    def label(self) -> str:
        rendered = " ".join([self.name] + self.arguments)
        return rendered if len(rendered) <= 60 else rendered[:57] + "..."

    def parallelizability(self) -> ParallelizabilityClass:
        return self.parallelizability_class

    @property
    def data_inputs(self) -> List[int]:
        """Input edges excluding configuration inputs."""
        return [edge for edge in self.inputs if edge not in self.config_inputs]


@dataclass
class CatNode(DFGNode):
    """Concatenate the input streams in order."""

    kind: str = "cat"

    def label(self) -> str:
        return f"cat x{len(self.inputs)}"


@dataclass
class SplitNode(DFGNode):
    """Split one input stream across the output streams.

    ``strategy`` is ``"general"`` (count lines first, then split evenly — used
    when the input size is unknown) or ``"input-aware"`` (block-split without
    a counting pass, usable when the size is known beforehand), matching the
    two implementations of §5.2.
    """

    strategy: str = "general"
    kind: str = "split"

    def label(self) -> str:
        return f"split[{self.strategy}] x{len(self.outputs)}"


@dataclass
class RelayNode(DFGNode):
    """Identity relay used for eager buffering, monitoring, and debugging.

    ``eager`` selects the §5.2 eager implementation (consume input as fast as
    possible into an unbounded buffer); ``blocking`` models the intermediate
    design point evaluated in Fig. 7 ("Blocking Eager").
    """

    eager: bool = True
    blocking: bool = False
    kind: str = "relay"

    def label(self) -> str:
        if self.blocking:
            return "relay[blocking]"
        return "relay[eager]" if self.eager else "relay"


@dataclass
class FusedStage(DFGNode):
    """A maximal linear chain of stateless commands evaluated by one worker.

    Produced by the ``fuse-stages`` optimization pass: consecutive
    single-input single-output commands in the *stateless* annotation class
    (Table 1) are collapsed into one node that evaluates the whole chain as
    an in-process generator pipeline.  Semantically the stage is the function
    composition of its members — stateless commands satisfy
    ``f(concat(xs)) == concat(map(f, xs))``, and composition preserves that
    property, so a fused stage streams batch-at-a-time exactly like its
    members did.  The parallel engine runs the chain in a single worker with
    no interior OS pipe, pump thread, or chunk re-framing; the shell
    back-end emits it as a plain ``a | b | c`` pipeline.
    """

    #: The fused command nodes, in dataflow order.  Their ``node_id``s are
    #: stale (the members left the graph); only name/arguments/class matter.
    nodes: List["CommandNode"] = field(default_factory=list)
    kind: str = "fused"

    def label(self) -> str:
        rendered = " | ".join(node.label() for node in self.nodes)
        return rendered if len(rendered) <= 60 else rendered[:57] + "..."

    def parallelizability(self) -> ParallelizabilityClass:
        """Composition of stateless functions is stateless."""
        return ParallelizabilityClass.STATELESS


@dataclass
class AggregatorNode(DFGNode):
    """Merge the outputs of parallel copies of a pure command."""

    aggregator: str = "concat"
    #: The original command's name/arguments (aggregators such as ``sort -m``
    #: need the original flags, e.g. ``-rn``, to merge correctly).
    command_name: str = ""
    command_arguments: List[str] = field(default_factory=list)
    kind: str = "aggregator"

    def label(self) -> str:
        return f"agg[{self.aggregator}] x{len(self.inputs)}"

    def parallelizability(self) -> ParallelizabilityClass:
        return ParallelizabilityClass.PARALLELIZABLE_PURE
