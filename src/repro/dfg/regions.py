"""Parallelizable-region detection (§5.1).

Parallelizable regions are maximal program sub-expressions that the POSIX
standard already allows to execute independently: pipelines and
``&``-composed commands.  Sequencing (``;``), the logical operators (``&&``,
``||``), and control flow (``for``, ``while``, ``if``) are barriers: regions
never extend across them, although the translation recurses *into* their
bodies to find further regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.shell.ast_nodes import (
    AndOr,
    BackgroundNode,
    BraceGroup,
    Command,
    ForLoop,
    IfClause,
    Node,
    Pipeline,
    SequenceNode,
    Subshell,
    WhileLoop,
)


@dataclass
class RegionCandidate:
    """A candidate region found by the structural walk.

    ``node`` is the Pipeline/Command AST node; ``background`` records whether
    the region was composed with ``&``; ``path`` describes where in the tree
    the candidate sits (useful for diagnostics and for loop-aware workload
    accounting).
    """

    node: Node
    background: bool = False
    path: List[str] = field(default_factory=list)

    @property
    def commands(self) -> List[Command]:
        if isinstance(self.node, Pipeline):
            return [cmd for cmd in self.node.commands if isinstance(cmd, Command)]
        if isinstance(self.node, Command):
            return [self.node]
        return []


@dataclass
class ParallelizableRegion:
    """A candidate region plus its DFG translation.

    The DFG is attached by :mod:`repro.dfg.builder`; a candidate that the
    builder rejects (unknown commands, dynamic arguments, unsupported
    redirections) never becomes a :class:`ParallelizableRegion` and is left
    untouched in the output script.
    """

    candidate: RegionCandidate
    dfg: "DataflowGraph" = None  # type: ignore[assignment]

    @property
    def node(self) -> Node:
        return self.candidate.node


def iter_region_candidates(node: Node, path: Optional[List[str]] = None) -> Iterator[RegionCandidate]:
    """Yield candidate regions beneath ``node`` without crossing barriers."""
    path = path or []
    if isinstance(node, (Pipeline, Command)):
        yield RegionCandidate(node, path=list(path))
        return
    if isinstance(node, BackgroundNode):
        for candidate in iter_region_candidates(node.body, path + ["&"]):
            candidate.background = True
            yield candidate
        return
    if isinstance(node, SequenceNode):
        for index, part in enumerate(node.parts):
            yield from iter_region_candidates(part, path + [f";{index}"])
        return
    if isinstance(node, AndOr):
        # &&/|| are barriers: each side is scanned independently.
        for index, part in enumerate(node.parts):
            yield from iter_region_candidates(part, path + [f"&&{index}"])
        return
    if isinstance(node, (Subshell, BraceGroup)):
        yield from iter_region_candidates(node.body, path + ["group"])
        return
    if isinstance(node, ForLoop):
        yield from iter_region_candidates(node.body, path + [f"for:{node.variable}"])
        return
    if isinstance(node, WhileLoop):
        # The loop condition is control logic; only the body is scanned.
        yield from iter_region_candidates(node.body, path + ["while"])
        return
    if isinstance(node, IfClause):
        yield from iter_region_candidates(node.then_body, path + ["then"])
        if node.else_body is not None:
            yield from iter_region_candidates(node.else_body, path + ["else"])
        return
    # Unknown node types are barriers.
    return


def find_parallelizable_regions(node: Node) -> List[RegionCandidate]:
    """Return all candidate regions in the AST, in program order."""
    return list(iter_region_candidates(node))


def loop_nesting_depth(candidate: RegionCandidate) -> int:
    """How many loops enclose the candidate (used by workload accounting)."""
    return sum(1 for element in candidate.path if element.startswith("for:") or element == "while")
