"""Parallelizable-region detection (§5.1).

Parallelizable regions are maximal program sub-expressions that the POSIX
standard already allows to execute independently: pipelines and
``&``-composed commands.  Sequencing (``;``), the logical operators (``&&``,
``||``), and control flow (``for``, ``while``, ``if``) are barriers: regions
never extend across them, although the translation recurses *into* their
bodies to find further regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.shell.ast_nodes import (
    AndOr,
    BackgroundNode,
    BraceGroup,
    Command,
    ForLoop,
    IfClause,
    Node,
    Pipeline,
    SequenceNode,
    Subshell,
    WhileLoop,
)


@dataclass
class RegionCandidate:
    """A candidate region found by the structural walk.

    ``node`` is the Pipeline/Command AST node; ``background`` records whether
    the region was composed with ``&``; ``path`` describes where in the tree
    the candidate sits (useful for diagnostics and for loop-aware workload
    accounting).
    """

    node: Node
    background: bool = False
    path: List[str] = field(default_factory=list)

    @property
    def commands(self) -> List[Command]:
        if isinstance(self.node, Pipeline):
            return [cmd for cmd in self.node.commands if isinstance(cmd, Command)]
        if isinstance(self.node, Command):
            return [self.node]
        return []


@dataclass
class ParallelizableRegion:
    """A candidate region plus its DFG translation.

    The DFG is attached by :mod:`repro.dfg.builder`; a candidate that the
    builder rejects (unknown commands, dynamic arguments, unsupported
    redirections) never becomes a :class:`ParallelizableRegion` and is left
    untouched in the output script.
    """

    candidate: RegionCandidate
    dfg: "DataflowGraph" = None  # type: ignore[assignment]

    @property
    def node(self) -> Node:
        return self.candidate.node


def iter_region_candidates(
    node: Node,
    path: Optional[List[str]] = None,
    on_loop: Optional[Callable[[ForLoop], None]] = None,
) -> Iterator[RegionCandidate]:
    """Yield candidate regions beneath ``node`` without crossing barriers.

    ``on_loop`` (optional) is called with each :class:`ForLoop` at the
    moment the walk *enters* it — i.e. after every candidate textually
    before the loop and before any candidate of its body — so callers
    maintaining an expansion context (the AOT translator) can bind loop
    variables in program order.
    """
    path = path or []
    if isinstance(node, (Pipeline, Command)):
        yield RegionCandidate(node, path=list(path))
        return
    if isinstance(node, BackgroundNode):
        for candidate in iter_region_candidates(node.body, path + ["&"], on_loop):
            candidate.background = True
            yield candidate
        return
    if isinstance(node, SequenceNode):
        for index, part in enumerate(node.parts):
            yield from iter_region_candidates(part, path + [f";{index}"], on_loop)
        return
    if isinstance(node, AndOr):
        # &&/|| are barriers: each side is scanned independently.
        for index, part in enumerate(node.parts):
            yield from iter_region_candidates(part, path + [f"&&{index}"], on_loop)
        return
    if isinstance(node, (Subshell, BraceGroup)):
        yield from iter_region_candidates(node.body, path + ["group"], on_loop)
        return
    if isinstance(node, ForLoop):
        if on_loop is not None:
            on_loop(node)
        yield from iter_region_candidates(
            node.body, path + [f"for:{node.variable}"], on_loop
        )
        return
    if isinstance(node, WhileLoop):
        # The loop condition is control logic; only the body is scanned.
        yield from iter_region_candidates(node.body, path + ["while"], on_loop)
        return
    if isinstance(node, IfClause):
        yield from iter_region_candidates(node.then_body, path + ["then"], on_loop)
        if node.else_body is not None:
            yield from iter_region_candidates(node.else_body, path + ["else"], on_loop)
        return
    # Unknown node types are barriers.
    return


def find_parallelizable_regions(node: Node) -> List[RegionCandidate]:
    """Return all candidate regions in the AST, in program order."""
    return list(iter_region_candidates(node))


def loop_nesting_depth(candidate: RegionCandidate) -> int:
    """How many loops enclose the candidate (used by workload accounting)."""
    return sum(1 for element in candidate.path if element.startswith("for:") or element == "while")


# ---------------------------------------------------------------------------
# Region fingerprinting (the JIT plan cache's structural key)
# ---------------------------------------------------------------------------


def iter_region_words(node: Node):
    """Yield every :class:`~repro.shell.ast_nodes.Word` the region expands.

    Covers command words, assignment values, and redirection targets — the
    complete set of places a variable reference or command substitution can
    influence what the region compiles to.
    """
    from repro.shell.ast_nodes import iter_commands

    for command in iter_commands(node):
        for assignment in command.assignments:
            yield assignment.value
        yield from command.words
        for redirection in command.redirections:
            if redirection.target is not None:
                yield redirection.target


def region_fingerprint(node: Node) -> str:
    """A stable structural fingerprint of a region's AST.

    Two regions with the same shell text share a fingerprint (the same loop
    body reached on every iteration trivially does), so the JIT plan cache
    can reuse a compiled plan whenever the referenced runtime bindings also
    match.
    """
    import hashlib

    from repro.shell.unparser import unparse

    return hashlib.sha256(unparse(node).encode("utf-8")).hexdigest()[:16]


def referenced_parameters(node: Node):
    """The parameter names a region's expansion depends on.

    Returns ``(names, has_substitution)``: ``names`` is a frozenset of every
    parameter the region references (including the variables mentioned
    inside ``${VAR:-default}`` words), and ``has_substitution`` records
    whether any word contains a command substitution — such regions can be
    JIT-compiled but never cached, because the substitution's output is not
    part of the cache key.
    """
    from repro.shell.ast_nodes import CommandSubstitution, ParameterPart
    from repro.shell.expansion import parameter_references

    names = set()
    has_substitution = False
    for word in iter_region_words(node):
        for part in word.parts:
            if isinstance(part, ParameterPart):
                names.update(parameter_references(part.name))
            elif isinstance(part, CommandSubstitution):
                has_substitution = True
    return frozenset(names), has_substitution
