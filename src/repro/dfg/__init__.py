"""PaSh's dataflow-graph intermediate representation (§4).

Nodes represent commands (plus the runtime helpers PaSh inserts: ``cat``,
``split``, relays, and aggregators); edges represent streams (named files or
FIFOs).  A distinguishing feature of the model — and the reason PaSh defines
its own DFG rather than reusing an existing one — is that every node records
the *order* in which it consumes its inputs.
"""

from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.graph import DataflowGraph, GraphError
from repro.dfg.nodes import (
    AggregatorNode,
    CatNode,
    CommandNode,
    DFGNode,
    RelayNode,
    SplitNode,
)
from repro.dfg.regions import ParallelizableRegion, find_parallelizable_regions
from repro.dfg.builder import DFGBuilder, TranslationResult, translate_script

__all__ = [
    "AggregatorNode",
    "CatNode",
    "CommandNode",
    "DFGBuilder",
    "DFGNode",
    "DataflowGraph",
    "Edge",
    "EdgeKind",
    "GraphError",
    "ParallelizableRegion",
    "RelayNode",
    "SplitNode",
    "TranslationResult",
    "find_parallelizable_regions",
    "translate_script",
]
