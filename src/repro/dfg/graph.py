"""The dataflow graph container and its structural operations."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.nodes import DFGNode


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class DataflowGraph:
    """A PaSh dataflow graph.

    The graph owns its nodes and edges and assigns their identifiers.  Each
    edge has at most one producer and one consumer; graph inputs are edges
    without a producer and graph outputs are edges without a consumer.
    """

    def __init__(self) -> None:
        self.nodes: Dict[int, DFGNode] = {}
        self.edges: Dict[int, Edge] = {}
        self._next_node_id = 0
        self._next_edge_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: DFGNode) -> DFGNode:
        """Insert ``node`` (assigning it a fresh id) and return it."""
        node.node_id = self._next_node_id
        self._next_node_id += 1
        self.nodes[node.node_id] = node
        return node

    def add_edge(
        self,
        kind: EdgeKind = EdgeKind.PIPE,
        name: Optional[str] = None,
        source: Optional[int] = None,
        target: Optional[int] = None,
    ) -> Edge:
        """Create a new edge."""
        edge = Edge(self._next_edge_id, kind=kind, name=name, source=source, target=target)
        self._next_edge_id += 1
        self.edges[edge.edge_id] = edge
        return edge

    def connect(self, source: DFGNode, target: DFGNode, kind: EdgeKind = EdgeKind.PIPE) -> Edge:
        """Create an edge from ``source`` to ``target`` and register it on both."""
        edge = self.add_edge(kind=kind, source=source.node_id, target=target.node_id)
        source.outputs.append(edge.edge_id)
        target.inputs.append(edge.edge_id)
        return edge

    def attach_input(self, node: DFGNode, edge: Edge, configuration: bool = False) -> None:
        """Route an existing edge into ``node`` as its next input."""
        if edge.target is not None:
            raise GraphError(f"edge {edge.edge_id} already has a consumer")
        edge.target = node.node_id
        node.inputs.append(edge.edge_id)
        if configuration and hasattr(node, "config_inputs"):
            node.config_inputs.append(edge.edge_id)

    def attach_output(self, node: DFGNode, edge: Edge) -> None:
        """Route ``node``'s next output into an existing edge."""
        if edge.source is not None:
            raise GraphError(f"edge {edge.edge_id} already has a producer")
        edge.source = node.node_id
        node.outputs.append(edge.edge_id)

    def remove_node(self, node_id: int) -> None:
        """Remove a node, detaching (but keeping) its edges."""
        node = self.nodes.pop(node_id)
        for edge_id in node.inputs:
            self.edges[edge_id].target = None
        for edge_id in node.outputs:
            self.edges[edge_id].source = None

    def remove_edge(self, edge_id: int) -> None:
        """Remove an edge and detach it from its endpoints."""
        edge = self.edges.pop(edge_id)
        if edge.source is not None and edge.source in self.nodes:
            node = self.nodes[edge.source]
            node.outputs = [e for e in node.outputs if e != edge_id]
        if edge.target is not None and edge.target in self.nodes:
            node = self.nodes[edge.target]
            node.inputs = [e for e in node.inputs if e != edge_id]
            if hasattr(node, "config_inputs"):
                node.config_inputs = [e for e in node.config_inputs if e != edge_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> DFGNode:
        return self.nodes[node_id]

    def edge(self, edge_id: int) -> Edge:
        return self.edges[edge_id]

    def input_edges(self) -> List[Edge]:
        """Edges without a producer, in id order."""
        return [edge for edge in self._sorted_edges() if edge.is_graph_input]

    def output_edges(self) -> List[Edge]:
        """Edges without a consumer, in id order."""
        return [edge for edge in self._sorted_edges() if edge.is_graph_output]

    def _sorted_edges(self) -> List[Edge]:
        return [self.edges[edge_id] for edge_id in sorted(self.edges)]

    def predecessors(self, node: DFGNode) -> List[DFGNode]:
        """Producer nodes of ``node``'s inputs, in input order."""
        result = []
        for edge_id in node.inputs:
            edge = self.edges[edge_id]
            if edge.source is not None:
                result.append(self.nodes[edge.source])
        return result

    def successors(self, node: DFGNode) -> List[DFGNode]:
        """Consumer nodes of ``node``'s outputs, in output order."""
        result = []
        for edge_id in node.outputs:
            edge = self.edges[edge_id]
            if edge.target is not None:
                result.append(self.nodes[edge.target])
        return result

    def source_nodes(self) -> List[DFGNode]:
        """Nodes all of whose inputs are graph inputs."""
        return [
            node
            for node in self.nodes.values()
            if all(self.edges[e].is_graph_input for e in node.inputs)
        ]

    def sink_nodes(self) -> List[DFGNode]:
        """Nodes all of whose outputs are graph outputs."""
        return [
            node
            for node in self.nodes.values()
            if all(self.edges[e].is_graph_output for e in node.outputs)
        ]

    def __len__(self) -> int:
        return len(self.nodes)

    def nodes_of_kind(self, kind: str) -> List[DFGNode]:
        """All nodes whose ``kind`` attribute matches."""
        return [node for node in self.nodes.values() if node.kind == kind]

    # ------------------------------------------------------------------
    # Ordering and validation
    # ------------------------------------------------------------------

    def topological_order(self) -> List[DFGNode]:
        """Nodes in a topological order; raises :class:`GraphError` on cycles."""
        in_degree: Dict[int, int] = {}
        for node in self.nodes.values():
            in_degree[node.node_id] = sum(
                1 for edge_id in node.inputs if self.edges[edge_id].source is not None
            )
        ready = sorted(node_id for node_id, degree in in_degree.items() if degree == 0)
        order: List[DFGNode] = []
        while ready:
            node_id = ready.pop(0)
            node = self.nodes[node_id]
            order.append(node)
            for edge_id in node.outputs:
                edge = self.edges[edge_id]
                if edge.target is None:
                    continue
                in_degree[edge.target] -= 1
                if in_degree[edge.target] == 0:
                    ready.append(edge.target)
            ready.sort()
        if len(order) != len(self.nodes):
            raise GraphError("dataflow graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError` on failure."""
        for node in self.nodes.values():
            for edge_id in node.inputs:
                edge = self.edges.get(edge_id)
                if edge is None:
                    raise GraphError(f"node {node.node_id} references missing edge {edge_id}")
                if edge.target != node.node_id:
                    raise GraphError(
                        f"edge {edge_id} target is {edge.target}, expected {node.node_id}"
                    )
            for edge_id in node.outputs:
                edge = self.edges.get(edge_id)
                if edge is None:
                    raise GraphError(f"node {node.node_id} references missing edge {edge_id}")
                if edge.source != node.node_id:
                    raise GraphError(
                        f"edge {edge_id} source is {edge.source}, expected {node.node_id}"
                    )
        for edge in self.edges.values():
            if edge.source is not None:
                source = self.nodes.get(edge.source)
                if source is None or edge.edge_id not in source.outputs:
                    raise GraphError(f"edge {edge.edge_id} has a dangling producer")
            if edge.target is not None:
                target = self.nodes.get(edge.target)
                if target is None or edge.edge_id not in target.inputs:
                    raise GraphError(f"edge {edge.edge_id} has a dangling consumer")
        self.topological_order()

    # ------------------------------------------------------------------
    # Debugging
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line textual dump of the graph (stable across runs)."""
        lines = [f"DataflowGraph: {len(self.nodes)} nodes, {len(self.edges)} edges"]
        for node in (self.nodes[node_id] for node_id in sorted(self.nodes)):
            inputs = ", ".join(self.edges[e].display_name() for e in node.inputs)
            outputs = ", ".join(self.edges[e].display_name() for e in node.outputs)
            lines.append(f"  [{node.node_id}] {node.label()}  in=({inputs}) out=({outputs})")
        return "\n".join(lines)

    def copy(self) -> "DataflowGraph":
        """Deep copy of the graph (used before destructive transformations)."""
        import copy as _copy

        return _copy.deepcopy(self)


def count_processes(graph: DataflowGraph) -> int:
    """Number of runtime processes the graph instantiates (Table 2 "nodes")."""
    return len(graph.nodes)


def merge_graphs(graphs: Iterable[DataflowGraph]) -> DataflowGraph:
    """Union of disjoint graphs into a single graph with fresh identifiers."""
    merged = DataflowGraph()
    for graph in graphs:
        node_mapping: Dict[int, int] = {}
        edge_mapping: Dict[int, int] = {}
        for node_id in sorted(graph.nodes):
            original = graph.nodes[node_id]
            clone = type(original)(**{**original.__dict__})
            clone.inputs = []
            clone.outputs = []
            if hasattr(clone, "config_inputs"):
                clone.config_inputs = []
            merged.add_node(clone)
            node_mapping[node_id] = clone.node_id
        for edge_id in sorted(graph.edges):
            original_edge = graph.edges[edge_id]
            clone_edge = merged.add_edge(
                kind=original_edge.kind,
                name=original_edge.name,
                source=node_mapping.get(original_edge.source)
                if original_edge.source is not None
                else None,
                target=node_mapping.get(original_edge.target)
                if original_edge.target is not None
                else None,
            )
            edge_mapping[edge_id] = clone_edge.edge_id
        for node_id, new_id in node_mapping.items():
            original = graph.nodes[node_id]
            clone = merged.nodes[new_id]
            clone.inputs = [edge_mapping[e] for e in original.inputs]
            clone.outputs = [edge_mapping[e] for e in original.outputs]
            if hasattr(original, "config_inputs"):
                clone.config_inputs = [edge_mapping[e] for e in original.config_inputs]
    return merged
