"""AST → DFG translation (§5.1).

The builder turns each candidate region (a pipeline or a single command) into
a dataflow graph.  The translation is deliberately conservative: any command
without an annotation, any argument whose value is not statically known, and
any redirection outside the supported subset causes the region to be
rejected, leaving the original script fragment untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.streams import VirtualFileSystem

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.library import AnnotationLibrary, standard_library
from repro.annotations.model import CommandInvocation, IOSpec
from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import CommandNode
from repro.dfg.regions import (
    ParallelizableRegion,
    RegionCandidate,
    find_parallelizable_regions,
)
from repro.shell.ast_nodes import Command, Node, Pipeline, Redirection
from repro.shell.expansion import ExpansionContext, ExpansionError, expand_word
from repro.shell.parser import parse


class UntranslatableRegion(ValueError):
    """Raised when a region cannot be translated to a DFG."""


#: Commands that generate output without consuming stdin; every other
#: command without file operands gets an implicit stdin edge.
GENERATOR_COMMANDS = frozenset({"seq", "echo", "yes", "fetch-station", "fetch-page"})


@dataclass
class TranslationResult:
    """Output of :func:`translate_script`.

    ``regions`` holds the successfully translated regions in program order;
    ``rejected`` records the candidates left untouched together with the
    reason, which the CLI surfaces in verbose mode.
    """

    ast: Node
    regions: List[ParallelizableRegion] = field(default_factory=list)
    rejected: List[Tuple[RegionCandidate, str]] = field(default_factory=list)
    #: Assignment-only statements, in program order.  These are *state
    #: updates*, not dataflow regions: they bind (or, when their value is
    #: dynamic, unbind) variables in the expansion context and stay in the
    #: emitted script verbatim, so they are not "rejected" and do not block
    #: engine execution.
    assignments: List[RegionCandidate] = field(default_factory=list)

    @property
    def parallelizable_command_count(self) -> int:
        """Number of data-parallelizable command nodes across all regions."""
        total = 0
        for region in self.regions:
            for node in region.dfg.nodes.values():
                if isinstance(node, CommandNode) and node.parallelizability().is_data_parallelizable:
                    total += 1
        return total


class DFGBuilder:
    """Builds dataflow graphs from AST fragments."""

    def __init__(
        self,
        library: Optional[AnnotationLibrary] = None,
        context: Optional[ExpansionContext] = None,
        filesystem: Optional["VirtualFileSystem"] = None,
    ) -> None:
        self.library = library if library is not None else standard_library()
        self.context = context if context is not None else ExpansionContext()
        #: When set, unquoted glob patterns in command words are resolved
        #: against this filesystem (the JIT driver passes the live VFS so
        #: ``cat *.txt`` compiles to the same inputs the interpreter reads).
        #: The AOT path leaves it None: patterns stay literal, matching the
        #: historical conservative behaviour.
        self.filesystem = filesystem
        #: True when any expanded field contained a glob metacharacter —
        #: such regions depend on filesystem state and must not be cached.
        self.saw_glob = False

    # ------------------------------------------------------------------
    # Region-level entry points
    # ------------------------------------------------------------------

    def build_region(self, candidate: RegionCandidate) -> ParallelizableRegion:
        """Translate a candidate region, raising on failure."""
        graph = self.build_from_node(candidate.node)
        graph.validate()
        return ParallelizableRegion(candidate, graph)

    def build_from_node(self, node: Node) -> DataflowGraph:
        """Translate a pipeline or single command into a DFG."""
        if isinstance(node, Pipeline):
            return self.build_from_pipeline(node)
        if isinstance(node, Command):
            return self.build_from_pipeline(Pipeline([node]))
        raise UntranslatableRegion(f"cannot translate node of type {type(node).__name__}")

    def build_from_script(self, source: str) -> DataflowGraph:
        """Parse ``source`` (a single pipeline) and translate it."""
        ast = parse(source)
        return self.build_from_node(ast)

    # ------------------------------------------------------------------
    # Pipeline translation
    # ------------------------------------------------------------------

    def build_from_pipeline(self, pipeline: Pipeline) -> DataflowGraph:
        if pipeline.negated:
            raise UntranslatableRegion("negated pipelines are not parallelized")
        graph = DataflowGraph()
        incoming: Optional[Edge] = None

        for index, element in enumerate(pipeline.commands):
            if not isinstance(element, Command):
                raise UntranslatableRegion(
                    f"pipeline element {index} is a {type(element).__name__}, not a simple command"
                )
            is_last = index == len(pipeline.commands) - 1
            incoming = self._add_command(graph, element, incoming, is_last)
        return graph

    def _add_command(
        self,
        graph: DataflowGraph,
        command: Command,
        incoming: Optional[Edge],
        is_last: bool,
    ) -> Optional[Edge]:
        """Add one command node; returns the edge feeding the next stage."""
        if command.assignments:
            raise UntranslatableRegion("assignments are not part of dataflow regions")

        argv = self._expand_argv(command)
        if not argv:
            raise UntranslatableRegion("empty command after expansion")
        name, arguments = argv[0], argv[1:]

        record = self.library.lookup(name)
        if record is None:
            raise UntranslatableRegion(f"command {name!r} has no annotation")
        invocation = record.invocation(name, arguments)
        assignment = record.classify(invocation)
        parallelizability = assignment.parallelizability
        if parallelizability is ParallelizabilityClass.SIDE_EFFECTFUL:
            raise UntranslatableRegion(f"command {name!r} is side-effectful under these flags")

        input_redirect, output_redirect = self._split_redirections(command)

        node = CommandNode(
            name=name,
            parallelizability_class=parallelizability,
            aggregator=record.aggregator,
        )
        graph.add_node(node)

        # ------------------------------------------------------------------
        # Inputs
        # ------------------------------------------------------------------
        operand_inputs = self._resolve_operand_inputs(assignment.inputs, invocation)
        uses_stdin = any(spec.kind == "stdin" for spec in assignment.inputs)
        consumed_operands: List[str] = list(operand_inputs)

        if operand_inputs:
            pipe_consumed = False
            for filename in operand_inputs:
                if filename == "-":
                    # The conventional "-" operand names the command's stdin.
                    if incoming is not None and not pipe_consumed:
                        graph.attach_input(node, incoming)
                        pipe_consumed = True
                    else:
                        edge = graph.add_edge(kind=EdgeKind.STDIN, name="stdin")
                        graph.attach_input(node, edge)
                    continue
                edge = graph.add_edge(kind=EdgeKind.FILE, name=filename)
                graph.attach_input(node, edge)
            # Mid-pipeline commands that read only files ignore the incoming
            # pipe; that would silently drop data, so reject such regions.
            if incoming is not None and not pipe_consumed:
                raise UntranslatableRegion(
                    f"command {name!r} reads file operands while consuming a pipe"
                )
        elif input_redirect is not None:
            if incoming is not None:
                raise UntranslatableRegion(
                    f"command {name!r} has both a pipe input and an input redirection"
                )
            edge = graph.add_edge(kind=EdgeKind.FILE, name=input_redirect)
            graph.attach_input(node, edge)
        elif incoming is not None:
            graph.attach_input(node, incoming)
        elif uses_stdin or name not in GENERATOR_COMMANDS:
            edge = graph.add_edge(kind=EdgeKind.STDIN, name="stdin")
            graph.attach_input(node, edge)

        # The node keeps the options plus any operands that were not converted
        # into edges (e.g. grep's pattern, sed's script, head's count).
        node.arguments = [
            argument
            for argument in arguments
            if argument not in consumed_operands
        ]

        # ------------------------------------------------------------------
        # Outputs
        # ------------------------------------------------------------------
        if output_redirect is not None:
            target, append = output_redirect
            edge = graph.add_edge(kind=EdgeKind.FILE, name=target)
            edge.append = append
            graph.attach_output(node, edge)
            if not is_last:
                raise UntranslatableRegion(
                    f"command {name!r} redirects stdout but is not the last pipeline stage"
                )
            return None
        if is_last:
            edge = graph.add_edge(kind=EdgeKind.STDOUT, name="stdout")
            graph.attach_output(node, edge)
            return None
        edge = graph.add_edge(kind=EdgeKind.PIPE)
        graph.attach_output(node, edge)
        return edge

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _expand_argv(self, command: Command) -> List[str]:
        argv: List[str] = []
        for word in command.words:
            try:
                fields = expand_word(word, self.context)
            except ExpansionError as exc:
                raise UntranslatableRegion(str(exc)) from exc
            argv.extend(self._glob_fields(word, fields))
        return argv

    def _glob_fields(self, word, fields: List[str]) -> List[str]:
        """Apply pathname expansion to one word's fields (JIT mode only)."""
        from repro.shell.expansion import expand_pathnames

        def resolve(pattern: str) -> List[str]:
            self.saw_glob = True
            if self.filesystem is None:
                return []  # AOT mode: the pattern stays literal
            return self.filesystem.glob(pattern)

        return expand_pathnames(word, fields, resolve)

    def _split_redirections(
        self, command: Command
    ) -> Tuple[Optional[str], Optional[Tuple[str, bool]]]:
        """Return (input file, (output file, append)) from the redirections."""
        input_file: Optional[str] = None
        output: Optional[Tuple[str, bool]] = None
        for redirection in command.redirections:
            target_text = self._redirection_target(redirection)
            if redirection.operator == "<":
                input_file = target_text
            elif redirection.operator in (">", ">>"):
                output = (target_text, redirection.operator == ">>")
            else:
                raise UntranslatableRegion(
                    f"unsupported redirection {redirection.operator!r}"
                )
        return input_file, output

    def _redirection_target(self, redirection: Redirection) -> str:
        if redirection.target is None:
            raise UntranslatableRegion("redirection without a target")
        try:
            fields = expand_word(redirection.target, self.context)
        except ExpansionError as exc:
            raise UntranslatableRegion(str(exc)) from exc
        if len(fields) != 1:
            raise UntranslatableRegion("redirection target expands to multiple fields")
        return fields[0]

    @staticmethod
    def _resolve_operand_inputs(specs: List[IOSpec], invocation: CommandInvocation) -> List[str]:
        """Resolve argument-referencing input specs to operand strings."""
        files: List[str] = []
        for spec in specs:
            if spec.kind in ("arg", "args"):
                files.extend(spec.resolve(invocation))
        return files


def translate_script(
    source_or_ast,
    library: Optional[AnnotationLibrary] = None,
    context: Optional[ExpansionContext] = None,
) -> TranslationResult:
    """Find and translate every parallelizable region of a script.

    Accepts either shell text or an already-parsed AST.  Regions that fail to
    translate are recorded (with the reason) and left untouched.
    """
    ast = parse(source_or_ast) if isinstance(source_or_ast, str) else source_or_ast
    builder = DFGBuilder(library, context)
    result = TranslationResult(ast)

    # Candidates arrive in program order, so assignments and loop-variable
    # bindings update the context exactly when the script would execute
    # them: regions *before* an assignment (or loop) never see its value,
    # regions after it do (the conservative counterpart of the shell's
    # dynamic scoping).
    from repro.dfg.regions import iter_region_candidates

    for candidate in iter_region_candidates(
        ast, on_loop=lambda loop: _apply_loop_binding(loop, builder.context)
    ):
        node = candidate.node
        if isinstance(node, Command) and node.assignments and not node.words:
            _apply_assignments(node, candidate, builder.context)
            result.assignments.append(candidate)
            continue
        try:
            region = builder.build_region(candidate)
        except (UntranslatableRegion, Exception) as exc:  # noqa: BLE001 - conservative by design
            if not isinstance(exc, UntranslatableRegion):
                reason = f"internal translation failure: {exc}"
            else:
                reason = str(exc)
            result.rejected.append((candidate, reason))
            continue
        result.regions.append(region)
    return result


def _apply_assignments(
    node: Command, candidate: RegionCandidate, context: ExpansionContext
) -> None:
    """Fold one assignment statement into the expansion context.

    Only assignments on the unconditional top-level path bind a value:
    anything under a loop, conditional, ``&&``/``||`` arm, or subshell may or
    may not run (or runs repeatedly), so its targets are *unbound* — later
    regions referencing them are left sequential rather than miscompiled.
    Dynamic values (command substitutions, unknown variables) unbind too.
    """
    from repro.shell.expansion import try_expand_word

    unconditional = all(element.startswith(";") for element in candidate.path)
    for assignment in node.assignments:
        fields = try_expand_word(assignment.value, context) if unconditional else None
        if fields is None:
            context.unbind(assignment.name)
        else:
            context.bind(assignment.name, " ".join(fields))


def _apply_loop_binding(loop, context: ExpansionContext) -> None:
    """Fold a ``for`` loop's variable into the context at loop entry.

    Loop variables take unknown values at compile time; bind the sole
    literal item when exactly one exists (single-iteration analyses stay
    possible) and *unbind* otherwise — a stale earlier binding must not
    leak into the body.  Called in program order (see
    :func:`repro.dfg.regions.iter_region_candidates`), so regions before
    the loop never see its variable.
    """
    if len(loop.items) == 1:
        value = loop.items[0].literal_text()
        if value is not None:
            context.bind(loop.variable, value)
            return
    context.unbind(loop.variable)
