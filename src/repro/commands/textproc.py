"""Text-processing commands: grep, tr, cut, sed, awk subset, and friends.

The grep/sed/tr paths are the engine's inner loop: under the parallel
backend's batch mode a stateless command is re-invoked once per arriving
chunk, so anything done per *call* (compiling the pattern, parsing the sed
script, building the tr translation table) used to repeat thousands of times
per stream.  Those derivations are now memoized on the argument text
(bounded ``lru_cache``), and the per-line loops hoist attribute lookups into
locals — the classic CPython bound-method tax.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List

from repro.commands.base import (
    CommandError,
    Stream,
    concat_streams,
    flag_value,
    has_flag,
    split_flags,
)


# ---------------------------------------------------------------------------
# grep
# ---------------------------------------------------------------------------


@lru_cache(maxsize=256)
def _compiled_grep_pattern(pattern_text: str, flags: int) -> "re.Pattern[str]":
    """Compile (and cache) a grep pattern — batch mode re-enters per chunk."""
    try:
        return re.compile(pattern_text, flags)
    except re.error as exc:
        raise CommandError(f"grep: bad pattern {pattern_text!r}: {exc}") from exc


def grep(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``grep [-i] [-v] [-c] [-E|-F] [-w] [-x] pattern [file...]``."""
    options, operands = split_flags(arguments)
    if not operands:
        raise CommandError("grep requires a pattern")
    pattern_text, *_ = operands
    data = concat_streams(inputs)

    flags = re.IGNORECASE if has_flag(options, "-i") else 0
    fixed = has_flag(options, "-F")
    if fixed:
        pattern_text = re.escape(pattern_text)
    if has_flag(options, "-w"):
        pattern_text = r"\b(?:%s)\b" % pattern_text
    pattern = _compiled_grep_pattern(pattern_text, flags)

    invert = has_flag(options, "-v")
    whole_line = has_flag(options, "-x")

    # Hot loop: one bound-method lookup, not one per line.
    probe = pattern.fullmatch if whole_line else pattern.search
    if invert:
        selected = [line for line in data if probe(line) is None]
    else:
        selected = [line for line in data if probe(line) is not None]
    if has_flag(options, "-c"):
        return [str(len(selected))]
    if has_flag(options, "-o"):
        out: Stream = []
        append = out.append
        finditer = pattern.finditer
        for line in data:
            for match in finditer(line):
                if bool(match.group(0)) != invert or not invert:
                    append(match.group(0))
        return out
    return selected


# ---------------------------------------------------------------------------
# tr
# ---------------------------------------------------------------------------

_TR_CLASSES = {
    "[:space:]": " \t\n\r\v\f",
    "[:upper:]": "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
    "[:lower:]": "abcdefghijklmnopqrstuvwxyz",
    "[:digit:]": "0123456789",
    "[:alpha:]": "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz",
    "[:alnum:]": "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
    "[:punct:]": r"""!"#$%&'()*+,-./:;<=>?@[\]^_`{|}~""",
}


@lru_cache(maxsize=256)
def _expand_tr_set(text: str) -> str:
    """Expand character classes, ranges, and escapes in a tr SET."""
    if text in _TR_CLASSES:
        return _TR_CLASSES[text]
    expanded: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            escape = text[index + 1]
            expanded.append({"n": "\n", "t": "\t", "\\": "\\"}.get(escape, escape))
            index += 2
        elif index + 2 < len(text) and text[index + 1] == "-":
            start, end = ord(char), ord(text[index + 2])
            expanded.extend(chr(code) for code in range(start, end + 1))
            index += 3
        else:
            expanded.append(char)
            index += 1
    return "".join(expanded)


@lru_cache(maxsize=256)
def _tr_translate_table(set1: str, set2: str):
    """The (cached) str.translate table for ``tr SET1 SET2``."""
    padded = set2 + set2[-1] * max(0, len(set1) - len(set2))
    return str.maketrans(set1, padded[: len(set1)])


@lru_cache(maxsize=256)
def _tr_delete_table(set1: str):
    """The (cached) str.translate table for ``tr -d SET1``."""
    return {ord(char): None for char in set1}


def tr(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``tr [-d] [-s] [-c] SET1 [SET2]`` over stdin.

    The newline-sensitive behaviours are modelled on the line stream: when a
    newline is produced inside a line (e.g. ``tr ' ' '\\n'``) the line is
    split into multiple output lines; deleting newlines joins lines.
    """
    options, operands = split_flags(arguments)
    data = concat_streams(inputs)
    delete = has_flag(options, "-d")
    squeeze = has_flag(options, "-s")
    complement = has_flag(options, "-c")

    set1 = _expand_tr_set(operands[0]) if operands else ""
    set2 = _expand_tr_set(operands[1]) if len(operands) > 1 else ""

    text = "\n".join(data)
    had_input = bool(data)

    if delete:
        if complement:
            keep = set(set1) | {"\n"}
            text = "".join(char for char in text if char in keep)
        else:
            text = text.translate(_tr_delete_table(set1))
    elif set2:
        if complement:
            members = set(set1)
            replacement = set2[-1]
            text = "".join(
                char if (char in members or char == "\n") else replacement for char in text
            )
        else:
            text = text.translate(_tr_translate_table(set1, set2))

    if squeeze:
        squeeze_set = set(set2) if set2 else set(set1)
        squeezed: List[str] = []
        previous = None
        for char in text:
            if char in squeeze_set and char == previous:
                continue
            squeezed.append(char)
            previous = char
        text = "".join(squeezed)

    if not had_input:
        return []
    # The joined text stands for the stream without its final newline, so
    # splitting on newlines maps back to exactly the output lines.
    return text.split("\n")


# ---------------------------------------------------------------------------
# cut
# ---------------------------------------------------------------------------


def _parse_ranges(spec: str) -> List[range]:
    """Parse a cut range list such as ``1,3-5`` or ``89-92`` (1-based)."""
    ranges: List[range] = []
    for piece in spec.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if "-" in piece:
            start_text, _, end_text = piece.partition("-")
            start = int(start_text) if start_text else 1
            end = int(end_text) if end_text else 10 ** 9
            ranges.append(range(start, end + 1))
        else:
            value = int(piece)
            ranges.append(range(value, value + 1))
    return ranges


def cut(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``cut -d DELIM -f LIST`` or ``cut -c LIST``."""
    data = concat_streams(inputs)
    char_spec = flag_value(arguments, "-c")
    field_spec = flag_value(arguments, "-f")
    delimiter = flag_value(arguments, "-d", "\t") or "\t"
    if delimiter.startswith('"') and delimiter.endswith('"') and len(delimiter) >= 2:
        delimiter = delimiter[1:-1]

    if char_spec:
        ranges = _parse_ranges(char_spec)
        out: Stream = []
        for line in data:
            selected = []
            for position, char in enumerate(line, start=1):
                if any(position in r for r in ranges):
                    selected.append(char)
            out.append("".join(selected))
        return out

    if field_spec:
        ranges = _parse_ranges(field_spec)
        out = []
        for line in data:
            if delimiter not in line:
                out.append(line)
                continue
            fields = line.split(delimiter)
            selected = [
                fields[index - 1]
                for index in range(1, len(fields) + 1)
                if any(index in r for r in ranges)
            ]
            out.append(delimiter.join(selected))
        return out

    raise CommandError("cut requires -c or -f")


# ---------------------------------------------------------------------------
# sed (substitution subset)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=256)
def _parse_sed_script(script: str):
    """Parse an ``s`` or ``y`` sed command with an arbitrary delimiter."""
    if not script or script[0] not in "sy":
        raise CommandError(f"unsupported sed script {script!r}")
    kind = script[0]
    if len(script) < 2:
        raise CommandError(f"malformed sed script {script!r}")
    delimiter = script[1]
    parts: List[str] = []
    current: List[str] = []
    index = 2
    while index < len(script):
        char = script[index]
        if char == "\\" and index + 1 < len(script) and script[index + 1] == delimiter:
            current.append(delimiter)
            index += 2
            continue
        if char == delimiter:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    parts.append("".join(current))
    if len(parts) < 2:
        raise CommandError(f"malformed sed script {script!r}")
    pattern, replacement = parts[0], parts[1]
    flags = parts[2] if len(parts) > 2 else ""
    return kind, pattern, replacement, flags


def sed(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``sed [-e] 's/pat/repl/[g]'`` (also ``y///`` and custom delimiters)."""
    data = concat_streams(inputs)
    scripts: List[str] = []
    skip_next = False
    operands_seen = 0
    for index, argument in enumerate(arguments):
        if skip_next:
            scripts.append(argument)
            skip_next = False
            continue
        if argument == "-e":
            skip_next = True
            continue
        if argument.startswith("-"):
            if argument == "-n":
                raise CommandError("sed -n is not supported (side-effectful in PaSh)")
            continue
        if operands_seen == 0:
            scripts.append(argument)
            operands_seen += 1
        # Remaining operands would be files; the executor resolves those into
        # input streams, so they are ignored here.
    if not scripts:
        raise CommandError("sed requires a script")

    out = list(data)
    for script in scripts:
        kind, pattern, replacement, flags = _parse_sed_script(script)
        if kind == "y":
            table = _sed_y_table(pattern, replacement)
            out = [line.translate(table) for line in out]
            continue
        count = 0 if "g" in flags else 1
        compiled, python_replacement = _compiled_sed_substitution(pattern, replacement)
        substitute = compiled.sub
        out = [substitute(python_replacement, line, count) for line in out]
    return out


@lru_cache(maxsize=256)
def _compiled_sed_substitution(pattern: str, replacement: str):
    """Compile (and cache) an ``s///`` command's regex and replacement text."""
    compiled = re.compile(pattern)
    python_replacement = re.sub(r"\\(\d)", r"\\\1", replacement.replace("&", "\\g<0>"))
    return compiled, python_replacement


@lru_cache(maxsize=256)
def _sed_y_table(pattern: str, replacement: str):
    """The (cached) translation table of a ``y///`` command."""
    return str.maketrans(pattern, replacement)


# ---------------------------------------------------------------------------
# awk (tiny print-oriented subset)
# ---------------------------------------------------------------------------

_AWK_PRINT_RE = re.compile(r"^\s*\{\s*print\s*(?P<body>[^}]*)\}\s*$")


def awk(arguments: List[str], inputs: List[Stream]) -> Stream:
    """A tiny awk subset: ``awk '{print $N[, $M...]}'`` and ``{print}``.

    The paper treats awk as unparallelizable; the implementation exists so
    that sequential baselines of the Unix50 pipelines still run in-process.
    """
    separator = None
    program = None
    index = 0
    while index < len(arguments):
        argument = arguments[index]
        if argument == "-F" and index + 1 < len(arguments):
            separator = arguments[index + 1]
            index += 2
            continue
        if argument.startswith("-F") and len(argument) > 2:
            separator = argument[2:]
            index += 1
            continue
        if argument.startswith("-") and argument != "-":
            index += 1
            continue
        if program is None:
            program = argument
        index += 1
    if program is None:
        raise CommandError("awk requires a program")
    data = concat_streams(inputs)
    match = _AWK_PRINT_RE.match(program)
    if not match:
        raise CommandError(f"unsupported awk program {program!r}")
    body = match.group("body").strip()
    out: Stream = []
    for line in data:
        fields = line.split(separator) if separator else line.split()
        if not body:
            out.append(line)
            continue
        pieces: List[str] = []
        for token in body.split(","):
            token = token.strip()
            if token == "$0":
                pieces.append(line)
            elif token.startswith("$"):
                index = int(token[1:])
                pieces.append(fields[index - 1] if 0 < index <= len(fields) else "")
            elif token.startswith('"') and token.endswith('"'):
                pieces.append(token[1:-1])
            else:
                raise CommandError(f"unsupported awk expression {token!r}")
        out.append(" ".join(pieces))
    return out


# ---------------------------------------------------------------------------
# Miscellaneous stateless text helpers
# ---------------------------------------------------------------------------


def fold(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``fold [-w N]``: wrap lines at N characters (default 80)."""
    width_text = flag_value(arguments, "-w", "80")
    width = int(width_text) if width_text else 80
    out: Stream = []
    for line in concat_streams(inputs):
        if not line:
            out.append("")
            continue
        for start in range(0, len(line), width):
            out.append(line[start : start + width])
    return out


def rev(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Reverse the characters of every line."""
    return [line[::-1] for line in concat_streams(inputs)]


def col(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``col -b``: strip backspaces (modelled as carriage-return removal)."""
    return [line.replace("\b", "").replace("\r", "") for line in concat_streams(inputs)]


def iconv(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``iconv -c``: drop non-ASCII characters (sufficient for the pipelines)."""
    return [
        line.encode("ascii", errors="ignore").decode("ascii")
        for line in concat_streams(inputs)
    ]


def strings(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Keep printable runs of length >= 4 (approximation of strings(1))."""
    out: Stream = []
    for line in concat_streams(inputs):
        for match in re.finditer(r"[ -~]{4,}", line):
            out.append(match.group(0))
    return out


def expand(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Convert tabs to spaces."""
    return [line.expandtabs(8) for line in concat_streams(inputs)]


def gunzip(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Pass-through stand-in for decompression of synthetic text inputs."""
    return concat_streams(inputs)


def xargs(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``xargs [-n N] command [args...]``.

    Groups input lines into batches of N (default: all) and invokes the
    wrapped command once per batch via the standard registry.  The wrapped
    command receives the batch as extra operands and no stdin.
    """
    from repro.commands.registry import standard_registry

    batch_text = None
    rest: List[str] = []
    index = 0
    while index < len(arguments):
        argument = arguments[index]
        if argument == "-n" and index + 1 < len(arguments):
            batch_text = arguments[index + 1]
            index += 2
            continue
        if argument.startswith("-n") and argument != "-n":
            batch_text = argument[2:]
            index += 1
            continue
        rest.append(argument)
        index += 1
    command_tokens = [token for token in rest if not (token.startswith("-") and token != "-")]
    if not command_tokens:
        raise CommandError("xargs requires a command")
    command = command_tokens[0]
    command_start = rest.index(command)
    command_arguments = rest[command_start + 1 :]
    data = concat_streams(inputs)
    registry = standard_registry()

    if batch_text is None:
        batches = [data] if data else []
    else:
        size = int(batch_text)
        batches = [data[index : index + size] for index in range(0, len(data), size)]

    out: Stream = []
    for batch in batches:
        out.extend(registry.run(command, command_arguments + batch, []))
    return out
