"""The standard command registry wiring names to implementations."""

from __future__ import annotations

from functools import lru_cache

from repro.commands import misc, sorting, textproc
from repro.commands.base import CommandImplementation, CommandRegistry


def _implementations():
    """Yield every standard command implementation."""
    yield CommandImplementation("grep", textproc.grep, "filter lines matching a pattern")
    yield CommandImplementation("egrep", textproc.grep, "grep with extended regexes")
    yield CommandImplementation("fgrep", textproc.grep, "grep with fixed strings")
    yield CommandImplementation("tr", textproc.tr, "transliterate or delete characters")
    yield CommandImplementation("cut", textproc.cut, "select fields or character ranges")
    yield CommandImplementation("sed", textproc.sed, "stream editor (substitution subset)")
    yield CommandImplementation("awk", textproc.awk, "awk print subset")
    yield CommandImplementation("fold", textproc.fold, "wrap lines to a width")
    yield CommandImplementation("rev", textproc.rev, "reverse characters of each line")
    yield CommandImplementation("col", textproc.col, "strip control characters")
    yield CommandImplementation("iconv", textproc.iconv, "drop non-ASCII characters")
    yield CommandImplementation("strings", textproc.strings, "printable runs")
    yield CommandImplementation("expand", textproc.expand, "tabs to spaces")
    yield CommandImplementation("gunzip", textproc.gunzip, "decompression stand-in")
    yield CommandImplementation("zcat", textproc.gunzip, "decompression stand-in")
    yield CommandImplementation("xargs", textproc.xargs, "build and run command lines")

    yield CommandImplementation("sort", sorting.sort_command, "sort lines")
    yield CommandImplementation("uniq", sorting.uniq, "collapse adjacent duplicates")
    yield CommandImplementation("comm", sorting.comm, "compare two sorted streams")
    yield CommandImplementation("join", sorting.join, "relational join of sorted streams")
    yield CommandImplementation("paste", sorting.paste, "merge corresponding lines")
    yield CommandImplementation("nl", sorting.nl, "number lines")
    yield CommandImplementation("tsort", sorting.tsort, "topological sort")

    yield CommandImplementation("cat", misc.cat, "concatenate inputs")
    yield CommandImplementation("head", misc.head, "first lines")
    yield CommandImplementation("tail", misc.tail, "last lines")
    yield CommandImplementation("tac", misc.tac, "reverse line order")
    yield CommandImplementation("wc", misc.wc, "line/word/character counts")
    yield CommandImplementation("seq", misc.seq, "numeric sequences")
    yield CommandImplementation("echo", misc.echo, "print arguments")
    yield CommandImplementation("basename", misc.basename, "strip directory prefix")
    yield CommandImplementation("dirname", misc.dirname, "directory part of a path")
    yield CommandImplementation("sha1sum", misc.sha1sum, "SHA-1 digest")
    yield CommandImplementation("md5sum", misc.md5sum, "MD5 digest")
    yield CommandImplementation("diff", misc.diff_command, "line difference of two streams")

    # Custom annotated commands for the use cases.
    yield CommandImplementation("html-to-text", misc.html_to_text, "strip HTML tags")
    yield CommandImplementation("url-extract", misc.url_extract, "extract URLs")
    yield CommandImplementation("word-stem", misc.word_stem, "stem words")
    yield CommandImplementation("strip-punct", misc.strip_punct, "remove punctuation")
    yield CommandImplementation("lowercase", misc.lowercase, "lower-case lines")
    yield CommandImplementation("bigrams", misc.bigrams, "emit per-line word bigrams")
    yield CommandImplementation("trigrams", misc.trigrams, "emit word trigrams")
    yield CommandImplementation("fetch-station", misc.fetch_station, "synthetic NOAA fetch")
    yield CommandImplementation("fetch-page", misc.fetch_page, "synthetic page fetch")
    yield CommandImplementation("curl", misc.fetch_station, "curl stand-in (synthetic fetch)")


@lru_cache(maxsize=1)
def _cached_registry() -> CommandRegistry:
    return CommandRegistry(_implementations())


def standard_registry() -> CommandRegistry:
    """Return the shared standard registry (copy it before mutating)."""
    return _cached_registry()
