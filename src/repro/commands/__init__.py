"""Pure-Python implementations of the UNIX commands used by the evaluation.

PaSh's correctness claim is that the parallel script produces byte-identical
output to the sequential script.  To check that claim without depending on
the host system's coreutils, this package provides line-stream
implementations of every command the benchmark scripts use.  The in-process
executor (:mod:`repro.runtime.executor`) resolves DFG nodes against the
registry defined here.

The implementations intentionally cover only the flag subsets exercised by
the paper's scripts; unsupported flags raise :class:`CommandError` so that
tests fail loudly rather than silently diverging from UNIX semantics.
"""

from repro.commands.base import CommandError, CommandImplementation, CommandRegistry
from repro.commands.registry import standard_registry

__all__ = [
    "CommandError",
    "CommandImplementation",
    "CommandRegistry",
    "standard_registry",
]
