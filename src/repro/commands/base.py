"""Command implementation protocol and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence


class CommandError(ValueError):
    """Raised when a command is invoked with unsupported arguments."""


#: A stream is a list of lines without trailing newlines.
Stream = List[str]


@dataclass
class CommandImplementation:
    """A single command implementation.

    ``function`` receives the argument vector (options and operands, already
    expanded) and the list of input streams in the order dictated by the
    command's annotation, and returns the output stream.
    """

    name: str
    function: Callable[[List[str], List[Stream]], Stream]
    description: str = ""

    def run(self, arguments: Sequence[str], inputs: Sequence[Stream]) -> Stream:
        """Execute the command over ``inputs`` and return its output lines."""
        return self.function(list(arguments), [list(stream) for stream in inputs])


class CommandRegistry:
    """Name-indexed collection of command implementations."""

    def __init__(self, implementations: Optional[Iterable[CommandImplementation]] = None) -> None:
        self._implementations: Dict[str, CommandImplementation] = {}
        for implementation in implementations or ():
            self.register(implementation)

    def register(self, implementation: CommandImplementation) -> None:
        """Add or replace an implementation."""
        self._implementations[implementation.name] = implementation

    def register_function(
        self,
        name: str,
        function: Callable[[List[str], List[Stream]], Stream],
        description: str = "",
    ) -> CommandImplementation:
        """Convenience wrapper to register a bare function."""
        implementation = CommandImplementation(name, function, description)
        self.register(implementation)
        return implementation

    def __contains__(self, name: str) -> bool:
        return name in self._implementations

    def __len__(self) -> int:
        return len(self._implementations)

    def names(self) -> List[str]:
        return sorted(self._implementations)

    def lookup(self, name: str) -> CommandImplementation:
        """Return the implementation for ``name``.

        Accepts both plain names and paths (``./avg.py`` resolves to
        ``avg.py``); raises :class:`CommandError` when unknown.
        """
        if name in self._implementations:
            return self._implementations[name]
        basename = name.rsplit("/", 1)[-1]
        if basename in self._implementations:
            return self._implementations[basename]
        raise CommandError(f"no implementation registered for command {name!r}")

    def run(self, name: str, arguments: Sequence[str], inputs: Sequence[Stream]) -> Stream:
        """Look up and run a command in one step."""
        return self.lookup(name).run(arguments, inputs)

    def copy(self) -> "CommandRegistry":
        return CommandRegistry(self._implementations.values())


# ---------------------------------------------------------------------------
# Argument-parsing helpers shared by the implementations
# ---------------------------------------------------------------------------


def split_flags(arguments: Sequence[str]) -> (List[str], List[str]):  # type: ignore[valid-type]
    """Split an argument vector into (options, operands)."""
    options: List[str] = []
    operands: List[str] = []
    for argument in arguments:
        if argument.startswith("-") and argument != "-":
            options.append(argument)
        else:
            operands.append(argument)
    return options, operands


def flag_value(arguments: Sequence[str], flag: str, default: Optional[str] = None) -> Optional[str]:
    """Return the value following ``flag`` (``-n 5`` or ``-n5`` or ``--n=5``)."""
    args = list(arguments)
    for index, argument in enumerate(args):
        if argument == flag:
            if index + 1 < len(args):
                return args[index + 1]
            return default
        if argument.startswith(flag) and len(argument) > len(flag) and not flag.startswith("--"):
            return argument[len(flag):]
        if argument.startswith(flag + "="):
            return argument[len(flag) + 1:]
    return default


def has_flag(arguments: Sequence[str], *flags: str) -> bool:
    """True when any of ``flags`` appears (including combined short options)."""
    short_letters = {flag[1] for flag in flags if len(flag) == 2 and flag[1] != "-"}
    for argument in arguments:
        if argument in flags:
            return True
        if (
            argument.startswith("-")
            and not argument.startswith("--")
            and argument != "-"
            and short_letters.intersection(argument[1:])
        ):
            return True
    return False


def concat_streams(streams: Sequence[Stream]) -> Stream:
    """Concatenate input streams in order (the shell's ``cat`` semantics)."""
    combined: Stream = []
    for stream in streams:
        combined.extend(stream)
    return combined
