"""Remaining commands: cat, head, tail, tac, wc, seq, hashing, and the
custom annotated commands used by the web-indexing and NOAA use cases."""

from __future__ import annotations

import hashlib
import re
from typing import List

from repro.commands.base import (
    CommandError,
    Stream,
    concat_streams,
    flag_value,
    has_flag,
    split_flags,
)


# ---------------------------------------------------------------------------
# Concatenation and selection
# ---------------------------------------------------------------------------


def cat(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``cat [-n]``: concatenate inputs, optionally numbering lines."""
    data = concat_streams(inputs)
    if has_flag(arguments, "-n"):
        return [f"{index:6d}\t{line}" for index, line in enumerate(data, start=1)]
    return data


def head(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``head [-n N]`` (default 10)."""
    count_text = flag_value(arguments, "-n", "10")
    count = int(count_text) if count_text else 10
    return concat_streams(inputs)[:count]


def tail(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``tail [-n N]`` (default 10); supports the ``-n +K`` skip form."""
    count_text = flag_value(arguments, "-n", "10") or "10"
    data = concat_streams(inputs)
    if count_text.startswith("+"):
        start = int(count_text[1:])
        return data[max(start - 1, 0):]
    count = int(count_text)
    if count == 0:
        return []
    return data[-count:]


def tac(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Reverse the order of lines."""
    return list(reversed(concat_streams(inputs)))


def wc(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``wc [-l] [-w] [-c]``: line/word/character counts."""
    data = concat_streams(inputs)
    lines = len(data)
    words = sum(len(line.split()) for line in data)
    characters = sum(len(line) + 1 for line in data)

    want_lines = has_flag(arguments, "-l")
    want_words = has_flag(arguments, "-w")
    want_chars = has_flag(arguments, "-c") or has_flag(arguments, "-m")
    if not (want_lines or want_words or want_chars):
        want_lines = want_words = want_chars = True

    fields: List[str] = []
    if want_lines:
        fields.append(str(lines))
    if want_words:
        fields.append(str(words))
    if want_chars:
        fields.append(str(characters))
    return [" ".join(fields)]


def seq(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``seq [first [increment]] last`` (negative increments included)."""
    numbers = []
    for argument in arguments:
        try:
            numbers.append(int(argument))
        except ValueError:
            continue
    if len(numbers) == 1:
        first, increment, last = 1, 1, numbers[0]
    elif len(numbers) == 2:
        first, increment, last = numbers[0], 1, numbers[1]
    elif len(numbers) == 3:
        first, increment, last = numbers
    else:
        raise CommandError("seq requires one to three numeric operands")
    out: Stream = []
    value = first
    while (increment > 0 and value <= last) or (increment < 0 and value >= last):
        out.append(str(value))
        value += increment
    return out


def echo(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``echo [-n] words...``."""
    _, operands = split_flags(arguments)
    return [" ".join(operands)]


def basename(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``basename path [suffix]`` or line-wise when reading a stream."""
    _, operands = split_flags(arguments)
    if operands:
        name = operands[0].rstrip("/").rsplit("/", 1)[-1]
        if len(operands) > 1 and name.endswith(operands[1]):
            name = name[: -len(operands[1])]
        return [name]
    return [line.rstrip("/").rsplit("/", 1)[-1] for line in concat_streams(inputs)]


def dirname(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``dirname path`` or line-wise when reading a stream."""
    _, operands = split_flags(arguments)

    def compute(path: str) -> str:
        trimmed = path.rstrip("/")
        if "/" not in trimmed:
            return "."
        parent = trimmed.rsplit("/", 1)[0]
        return parent or "/"

    if operands:
        return [compute(operands[0])]
    return [compute(line) for line in concat_streams(inputs)]


# ---------------------------------------------------------------------------
# Hashing / diffing (non-parallelizable pure)
# ---------------------------------------------------------------------------


def sha1sum(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Hash the concatenated input stream."""
    digest = hashlib.sha1()
    for line in concat_streams(inputs):
        digest.update(line.encode("utf-8", errors="replace"))
        digest.update(b"\n")
    return [f"{digest.hexdigest()}  -"]


def md5sum(arguments: List[str], inputs: List[Stream]) -> Stream:
    """MD5 of the concatenated input stream."""
    digest = hashlib.md5()
    for line in concat_streams(inputs):
        digest.update(line.encode("utf-8", errors="replace"))
        digest.update(b"\n")
    return [f"{digest.hexdigest()}  -"]


def diff_command(arguments: List[str], inputs: List[Stream]) -> Stream:
    """A minimal ``diff``: report added/removed lines between two inputs."""
    if len(inputs) < 2:
        raise CommandError("diff requires two input streams")
    import difflib

    first, second = list(inputs[0]), list(inputs[1])
    out: Stream = []
    for line in difflib.unified_diff(first, second, lineterm="", n=0):
        if line.startswith(("---", "+++", "@@")):
            continue
        out.append(line)
    return out


# ---------------------------------------------------------------------------
# Custom annotated commands used by the use cases (§6.3, §6.4)
# ---------------------------------------------------------------------------

_TAG_RE = re.compile(r"<[^>]+>")
_URL_RE = re.compile(r"https?://[^\s\"'<>]+")
_PUNCT_RE = re.compile(r"[^\w\s]")


def html_to_text(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Strip HTML tags from every line (stateless)."""
    out: Stream = []
    for line in concat_streams(inputs):
        text = _TAG_RE.sub(" ", line)
        text = re.sub(r"\s+", " ", text).strip()
        if text:
            out.append(text)
    return out


def url_extract(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Extract URLs from every line (stateless)."""
    out: Stream = []
    for line in concat_streams(inputs):
        out.extend(_URL_RE.findall(line))
    return out


def word_stem(arguments: List[str], inputs: List[Stream]) -> Stream:
    """A toy Porter-style stemmer applied word-by-word (stateless)."""
    suffixes = ("ingly", "edly", "ing", "ed", "ly", "es", "s")

    def stem(word: str) -> str:
        lowered = word.lower()
        for suffix in suffixes:
            if lowered.endswith(suffix) and len(lowered) - len(suffix) >= 3:
                return lowered[: -len(suffix)]
        return lowered

    out: Stream = []
    for line in concat_streams(inputs):
        out.append(" ".join(stem(word) for word in line.split()))
    return out


def strip_punct(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Remove punctuation characters (stateless)."""
    return [_PUNCT_RE.sub("", line) for line in concat_streams(inputs)]


def lowercase(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Lower-case every line (stateless)."""
    return [line.lower() for line in concat_streams(inputs)]


def bigrams(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Emit word bigrams of every line, one per output line (stateless).

    The optimized bi-grams benchmark (§6.1) uses this helper instead of the
    stream-shifting ``tail -n +2`` / ``paste`` trick; because it never crosses
    line boundaries it stays in the stateless class and parallelizes without
    a split barrier.
    """
    out: Stream = []
    for line in concat_streams(inputs):
        words = line.split()
        out.extend(f"{first} {second}" for first, second in zip(words, words[1:]))
    return out


def trigrams(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Emit word trigrams of the concatenated input (pure)."""
    words: List[str] = []
    for line in concat_streams(inputs):
        words.extend(line.split())
    return [
        " ".join(words[index : index + 3])
        for index in range(len(words) - 2)
    ]


def fetch_station(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Stand-in for ``curl`` in the NOAA pipeline (§6.3).

    Deterministically synthesizes fixed-width temperature records for the
    station/year identifiers given as operands or on the input stream.  The
    substitution keeps the pipeline's DFG identical while removing the
    network dependency.
    """
    from repro.workloads.noaa import station_records

    _, operands = split_flags(arguments)
    identifiers = operands or concat_streams(inputs)
    out: Stream = []
    for identifier in identifiers:
        out.extend(station_records(identifier))
    return out


def fetch_page(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Stand-in for the page download stage of the web-indexing use case."""
    from repro.workloads.wikipedia import page_html

    _, operands = split_flags(arguments)
    identifiers = operands or concat_streams(inputs)
    out: Stream = []
    for identifier in identifiers:
        out.extend(page_html(identifier))
    return out
