"""Ordering-sensitive commands: sort, uniq, comm, join, paste, nl."""

from __future__ import annotations

import functools
import re
from typing import List, Tuple

from repro.commands.base import (
    CommandError,
    Stream,
    concat_streams,
    flag_value,
    has_flag,
    split_flags,
)


# ---------------------------------------------------------------------------
# sort
# ---------------------------------------------------------------------------

_NUMBER_RE = re.compile(r"^\s*(-?\d+(?:\.\d+)?)")


def _numeric_key(text: str) -> float:
    match = _NUMBER_RE.match(text)
    if not match:
        return 0.0
    return float(match.group(1))


def _sort_key_function(arguments: List[str]):
    """Build the key function implied by sort's flags."""
    numeric = has_flag(arguments, "-n")
    ignore_case = has_flag(arguments, "-f")
    dictionary = has_flag(arguments, "-d")
    key_spec = flag_value(arguments, "-k")
    field_index = None
    key_numeric = numeric
    if key_spec:
        head = key_spec.split(",")[0]
        if head.endswith("n"):
            key_numeric = True
            head = head[:-1]
        if head.endswith("r"):
            head = head[:-1]
        field_index = int(head) if head else None

    def extract(line: str) -> str:
        if field_index is None:
            return line
        fields = line.split()
        if 0 < field_index <= len(fields):
            # POSIX sort keys run from the start of the field to end of line.
            return " ".join(fields[field_index - 1 :])
        return ""

    def key(line: str):
        text = extract(line)
        if dictionary:
            text = "".join(char for char in text if char.isalnum() or char.isspace())
        if ignore_case:
            text = text.lower()
        if key_numeric:
            return (_numeric_key(text), text)
        return text

    return key


def sort_command(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``sort [-r] [-n] [-u] [-f] [-d] [-k SPEC] [-m] [file...]``."""
    reverse = has_flag(arguments, "-r")
    unique = has_flag(arguments, "-u")
    key = _sort_key_function(arguments)

    if has_flag(arguments, "-m"):
        merged = merge_sorted_streams(inputs, key=key, reverse=reverse)
    else:
        merged = sorted(concat_streams(inputs), key=key, reverse=reverse)

    if unique:
        deduplicated: Stream = []
        previous_key = object()
        for line in merged:
            current = key(line)
            if current != previous_key:
                deduplicated.append(line)
                previous_key = current
        return deduplicated
    return merged


def merge_sorted_streams(inputs: List[Stream], key, reverse: bool = False) -> Stream:
    """Merge already-sorted streams (the ``sort -m`` aggregation)."""
    import heapq

    class _Wrapper:
        __slots__ = ("value", "key")

        def __init__(self, value: str) -> None:
            self.value = value
            self.key = key(value)

        def __lt__(self, other: "_Wrapper") -> bool:
            if reverse:
                return self.key > other.key
            return self.key < other.key

    iterators = [iter([_Wrapper(line) for line in stream]) for stream in inputs]
    merged = heapq.merge(*iterators)
    return [wrapper.value for wrapper in merged]


# ---------------------------------------------------------------------------
# uniq
# ---------------------------------------------------------------------------


def uniq(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``uniq [-c] [-d] [-i]``: collapse adjacent duplicate lines."""
    count = has_flag(arguments, "-c")
    only_duplicates = has_flag(arguments, "-d")
    ignore_case = has_flag(arguments, "-i")
    data = concat_streams(inputs)

    groups: List[Tuple[str, int]] = []
    for line in data:
        comparable = line.lower() if ignore_case else line
        if groups and (groups[-1][0].lower() if ignore_case else groups[-1][0]) == comparable:
            groups[-1] = (groups[-1][0], groups[-1][1] + 1)
        else:
            groups.append((line, 1))

    out: Stream = []
    for line, occurrences in groups:
        if only_duplicates and occurrences < 2:
            continue
        if count:
            out.append(f"{occurrences:7d} {line}")
        else:
            out.append(line)
    return out


# ---------------------------------------------------------------------------
# comm
# ---------------------------------------------------------------------------


def comm(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``comm [-1] [-2] [-3] file1 file2`` over two sorted inputs."""
    if len(inputs) < 2:
        raise CommandError("comm requires two input streams")
    first, second = list(inputs[0]), list(inputs[1])
    suppress_first = has_flag(arguments, "-1")
    suppress_second = has_flag(arguments, "-2")
    suppress_common = has_flag(arguments, "-3")

    column_offsets = {"first": 0, "second": 0, "common": 0}
    if not suppress_first:
        column_offsets["second"] += 1
        column_offsets["common"] += 1
    if not suppress_second:
        column_offsets["common"] += 1

    out: Stream = []

    def emit(column: str, line: str) -> None:
        if column == "first" and suppress_first:
            return
        if column == "second" and suppress_second:
            return
        if column == "common" and suppress_common:
            return
        out.append("\t" * column_offsets[column] + line)

    i = j = 0
    while i < len(first) and j < len(second):
        if first[i] == second[j]:
            emit("common", first[i])
            i += 1
            j += 1
        elif first[i] < second[j]:
            emit("first", first[i])
            i += 1
        else:
            emit("second", second[j])
            j += 1
    for line in first[i:]:
        emit("first", line)
    for line in second[j:]:
        emit("second", line)
    return out


# ---------------------------------------------------------------------------
# join / paste / nl
# ---------------------------------------------------------------------------


def join(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``join file1 file2`` on the first field of two sorted inputs."""
    if len(inputs) < 2:
        raise CommandError("join requires two input streams")
    first = [line.split(None, 1) for line in inputs[0]]
    second = [line.split(None, 1) for line in inputs[1]]
    out: Stream = []
    i = j = 0
    while i < len(first) and j < len(second):
        key_a = first[i][0] if first[i] else ""
        key_b = second[j][0] if second[j] else ""
        if key_a == key_b:
            rest_a = first[i][1] if len(first[i]) > 1 else ""
            rest_b = second[j][1] if len(second[j]) > 1 else ""
            pieces = [key_a]
            if rest_a:
                pieces.append(rest_a)
            if rest_b:
                pieces.append(rest_b)
            out.append(" ".join(pieces))
            i += 1
            j += 1
        elif key_a < key_b:
            i += 1
        else:
            j += 1
    return out


def paste(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``paste [-d DELIM] [-s]``: merge corresponding lines of the inputs."""
    delimiter = flag_value(arguments, "-d", "\t") or "\t"
    serial = has_flag(arguments, "-s")
    if serial:
        return [delimiter.join(stream) for stream in inputs if True]
    if len(inputs) == 1:
        return list(inputs[0])
    length = max((len(stream) for stream in inputs), default=0)
    out: Stream = []
    for index in range(length):
        out.append(
            delimiter.join(stream[index] if index < len(stream) else "" for stream in inputs)
        )
    return out


def nl(arguments: List[str], inputs: List[Stream]) -> Stream:
    """``nl``: number non-empty lines."""
    out: Stream = []
    counter = 0
    for line in concat_streams(inputs):
        if line.strip():
            counter += 1
            out.append(f"{counter:6d}\t{line}")
        else:
            out.append("")
    return out


def tsort(arguments: List[str], inputs: List[Stream]) -> Stream:
    """Topological sort of a pair-per-line dependency list."""
    pairs: List[Tuple[str, str]] = []
    tokens: List[str] = []
    for line in concat_streams(inputs):
        tokens.extend(line.split())
    if len(tokens) % 2 != 0:
        raise CommandError("tsort requires an even number of tokens")
    for index in range(0, len(tokens), 2):
        pairs.append((tokens[index], tokens[index + 1]))

    nodes = {token for pair in pairs for token in pair}
    dependencies = {node: set() for node in nodes}
    for before, after in pairs:
        if before != after:
            dependencies[after].add(before)

    out: Stream = []
    remaining = dict(dependencies)
    while remaining:
        ready = sorted(node for node, deps in remaining.items() if not deps)
        if not ready:
            raise CommandError("tsort: input contains a cycle")
        for node in ready:
            out.append(node)
            del remaining[node]
        for deps in remaining.values():
            deps.difference_update(ready)
    return out
