"""PaSh's back-end: DFG → parallel shell script (§5.2).

:mod:`repro.backend.shell_emitter` instantiates a dataflow graph as POSIX
shell text — named pipes, background jobs, and the cleanup logic that keeps
early-exiting consumers (``head``) from deadlocking their producers.
:mod:`repro.backend.compiler` drives the whole compilation: find regions,
optimize their DFGs, and splice the emitted parallel fragments back into the
surrounding script.
"""

from repro.backend.compiler import CompilationStats, CompiledScript, compile_script
from repro.backend.shell_emitter import EmitterOptions, emit_parallel_script

__all__ = [
    "CompilationStats",
    "CompiledScript",
    "EmitterOptions",
    "compile_script",
    "emit_parallel_script",
]
