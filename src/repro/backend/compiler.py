"""Deprecated end-to-end compiler entry points.

The compilation flow (§2.3: parse, find parallelizable regions, translate
them to DFGs, optimize each DFG, emit a new script) now lives behind the
``repro.api`` front door — :class:`repro.api.Pash` and its
:class:`repro.api.artifact.CompiledScript` artifact.  This module keeps the
historical names importable:

* :func:`compile_script` — thin shim over ``Pash.compile`` (emits a
  :class:`DeprecationWarning`),
* :class:`CompiledScript` / :class:`CompilationStats` — re-exported from
  :mod:`repro.api.artifact` (same classes, richer than the originals).
"""

from __future__ import annotations

import warnings
from typing import Dict, Tuple

from repro.api.artifact import (  # noqa: F401 - re-exported for compatibility
    CompilationStats,
    CompiledScript,
)


def compile_script(
    source: str,
    config=None,
    library=None,
    context=None,
    emitter_options=None,
) -> CompiledScript:
    """Deprecated: use ``repro.api.Pash.compile`` (or ``repro.api.compile``)."""
    warnings.warn(
        "repro.backend.compiler.compile_script is deprecated; "
        "use repro.api.Pash.compile(source, config) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.config import PashConfig
    from repro.api.pash import Pash

    return Pash(PashConfig.coerce(config), library=library).compile(
        source, context=context, emitter_options=emitter_options
    )


def compile_and_report(
    source: str, widths: Tuple[int, ...] = (16, 64), **kwargs
) -> Dict[int, CompiledScript]:
    """Deprecated: compile ``source`` at several widths via ``repro.api``."""
    warnings.warn(
        "repro.backend.compiler.compile_and_report is deprecated; "
        "use repro.api.Pash.compile with PashConfig.paper_default(width) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.config import PashConfig
    from repro.api.pash import Pash

    library = kwargs.pop("library", None)
    return {
        width: Pash(PashConfig.paper_default(width), library=library).compile(source, **kwargs)
        for width in widths
    }
