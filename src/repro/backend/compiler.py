"""The end-to-end compiler: sequential script in, parallel script out.

``compile_script`` mirrors PaSh's overall flow (§2.3): parse, find
parallelizable regions, translate them to DFGs, optimize each DFG, and emit a
new script in which every optimized region has been replaced by its parallel
instantiation while everything else is preserved verbatim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.annotations.library import AnnotationLibrary
from repro.backend.shell_emitter import EmitterOptions, emit_parallel_script
from repro.dfg.builder import TranslationResult, translate_script
from repro.dfg.graph import DataflowGraph
from repro.shell.ast_nodes import (
    AndOr,
    BackgroundNode,
    BraceGroup,
    ForLoop,
    IfClause,
    Node,
    SequenceNode,
    Subshell,
    WhileLoop,
)
from repro.shell.expansion import ExpansionContext
from repro.shell.parser import parse
from repro.shell.unparser import unparse
from repro.transform.pipeline import OptimizationReport, ParallelizationConfig, optimize_graph


@dataclass
class CompilationStats:
    """Aggregate statistics for one compilation (feeds Table 2)."""

    regions_found: int = 0
    regions_parallelized: int = 0
    regions_rejected: int = 0
    total_nodes: int = 0
    parallelized_commands: List[str] = field(default_factory=list)
    compile_time_seconds: float = 0.0

    def record_report(self, report: OptimizationReport) -> None:
        self.parallelized_commands.extend(report.parallelized_commands)


@dataclass
class CompiledScript:
    """Result of :func:`compile_script`."""

    source: str
    text: str
    stats: CompilationStats
    translation: TranslationResult
    optimized_graphs: List[DataflowGraph] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        """Total runtime processes across all optimized regions (Table 2)."""
        return sum(len(graph.nodes) for graph in self.optimized_graphs)


def compile_script(
    source: str,
    config: Optional[ParallelizationConfig] = None,
    library: Optional[AnnotationLibrary] = None,
    context: Optional[ExpansionContext] = None,
    emitter_options: Optional[EmitterOptions] = None,
) -> CompiledScript:
    """Compile ``source`` into its data-parallel equivalent."""
    config = config or ParallelizationConfig()
    emitter_options = emitter_options or EmitterOptions(header=False, cleanup=True)
    started = time.perf_counter()

    translation = translate_script(source, library=library, context=context)
    stats = CompilationStats(
        regions_found=len(translation.regions) + len(translation.rejected),
        regions_rejected=len(translation.rejected),
    )

    replacements: Dict[int, str] = {}
    optimized_graphs: List[DataflowGraph] = []
    for region in translation.regions:
        graph = region.dfg
        report = optimize_graph(graph, config)
        stats.record_report(report)
        optimized_graphs.append(graph)
        stats.total_nodes += len(graph.nodes)
        if report.parallelized_count > 0:
            stats.regions_parallelized += 1
            replacements[id(region.node)] = emit_parallel_script(graph, emitter_options).rstrip("\n")

    text = _render_with_replacements(translation.ast, replacements)
    stats.compile_time_seconds = time.perf_counter() - started
    return CompiledScript(
        source=source,
        text=text,
        stats=stats,
        translation=translation,
        optimized_graphs=optimized_graphs,
    )


# ---------------------------------------------------------------------------
# AST rendering with region replacement
# ---------------------------------------------------------------------------


def _render_with_replacements(node: Node, replacements: Dict[int, str]) -> str:
    """Unparse ``node``, substituting parallel fragments for optimized regions."""
    if id(node) in replacements:
        return replacements[id(node)]
    if isinstance(node, SequenceNode):
        return "\n".join(_render_with_replacements(part, replacements) for part in node.parts)
    if isinstance(node, AndOr):
        pieces = [_render_with_replacements(node.parts[0], replacements)]
        for operator, part in zip(node.operators, node.parts[1:]):
            pieces.append(f" {operator} {_render_with_replacements(part, replacements)}")
        return "".join(pieces)
    if isinstance(node, BackgroundNode):
        return f"{_render_with_replacements(node.body, replacements)} &"
    if isinstance(node, Subshell):
        return f"( {_render_with_replacements(node.body, replacements)} )"
    if isinstance(node, BraceGroup):
        return "{ " + _render_with_replacements(node.body, replacements) + "; }"
    if isinstance(node, ForLoop):
        items = " ".join(unparse_word_safe(word) for word in node.items)
        header = f"for {node.variable} in {items}" if node.items else f"for {node.variable}"
        return f"{header}; do\n{_render_with_replacements(node.body, replacements)}\ndone"
    if isinstance(node, WhileLoop):
        keyword = "until" if node.until else "while"
        return (
            f"{keyword} {_render_with_replacements(node.condition, replacements)}; do\n"
            f"{_render_with_replacements(node.body, replacements)}\ndone"
        )
    if isinstance(node, IfClause):
        text = (
            f"if {_render_with_replacements(node.condition, replacements)}; then\n"
            f"{_render_with_replacements(node.then_body, replacements)}\n"
        )
        if node.else_body is not None:
            text += f"else\n{_render_with_replacements(node.else_body, replacements)}\n"
        return text + "fi"
    return unparse(node)


def unparse_word_safe(word) -> str:
    """Render a word for loop headers (delegates to the unparser)."""
    from repro.shell.unparser import unparse_word

    return unparse_word(word)


def compile_and_report(
    source: str, widths: Tuple[int, ...] = (16, 64), **kwargs
) -> Dict[int, CompiledScript]:
    """Compile ``source`` at several widths (used by the Table 2 harness)."""
    return {
        width: compile_script(source, ParallelizationConfig.paper_default(width), **kwargs)
        for width in widths
    }
